"""Hash-consed bitvector/boolean term language.

This module is the reproduction's stand-in for Z3's AST layer.  Flay builds
*data-plane expressions* over two kinds of symbols:

* **data-plane symbols** (``@x@`` in the paper) — packet-derived values that
  may take any value, and
* **control-plane symbols** (``|x|`` in the paper) — placeholders that are
  later substituted with concrete control-plane assignments.

Terms are immutable and *hash-consed*: building the same term twice yields
the same object, so structural equality is identity (``is``) and memoized
passes key on ``id()``.  All bitvector arithmetic is unsigned modulo 2**width.

**Interning invariant (load-bearing for every ``id()``-keyed memo).**  A
:class:`TermFactory` holds a *strong* reference to every term it ever
built, for the lifetime of the factory; the shared :data:`DEFAULT_FACTORY`
is module-level and therefore immortal.  Consequently a term built through
the module-level constructors is never garbage-collected, its ``id()`` is
stable for the life of the process, and a memo keyed on ``id(term)`` can
never alias a recycled address.  The cross-update caches (delta
substitution, simplify memos, solver verdict cache, CNF fragments) rely on
this; ``tests/smt/test_interning.py`` is the regression test.  Caches keyed
directly on :class:`Term` objects (hash is precomputed, equality short-cuts
on identity) additionally hold their own strong references and are safe
even for terms from short-lived private factories.

Because identity *is* the cache key, terms deliberately refuse to pickle
(see :meth:`Term.__reduce__`): a pickled copy in another process would be
a distinct object and silently miss every memo.  The supported way to
move terms across a process boundary is :class:`repro.smt.arena.TermArena`
— encode to integer indices, ship the arena, and decode *through the
default factory* on the other side, which re-interns every node and
restores the identity invariant.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import FlayError, STAGE_QUERY


class SortError(FlayError, TypeError):
    """Raised when an operator is applied to terms of the wrong sort."""

    default_stage = STAGE_QUERY


class Term:
    """A node in the hash-consed term DAG.

    Attributes:
        op: operator tag, one of the ``OP_*`` constants below.
        args: child terms (a tuple; empty for leaves).
        width: bit width for bitvector terms, ``0`` for boolean terms.
        payload: leaf data — the integer value of a constant or the name of
            a variable; ``None`` for interior nodes (except ``extract``,
            which stores its ``(hi, lo)`` bounds here).
    """

    __slots__ = ("op", "args", "width", "payload", "_hash", "__weakref__")

    def __init__(self, op: str, args: tuple, width: int, payload) -> None:
        self.op = op
        self.args = args
        self.width = width
        self.payload = payload
        self._hash = hash((op, args, width, payload))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        # Hash-consing guarantees structurally-equal terms from the same
        # factory are the same object, so equality is identity plus a
        # shallow check (children compared by identity).  Deep structural
        # recursion would blow the stack on the 1000-entry ite chains the
        # Table 3 workload produces.
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        if (
            self.op != other.op
            or self.width != other.width
            or self.payload != other.payload
            or len(self.args) != len(other.args)
        ):
            return False
        return all(a is b for a, b in zip(self.args, other.args))

    # -- convenience predicates -------------------------------------------

    @property
    def is_bool(self) -> bool:
        return self.width == 0

    @property
    def is_bv(self) -> bool:
        return self.width > 0

    @property
    def is_const(self) -> bool:
        return self.op in (OP_BVCONST, OP_BOOLCONST)

    @property
    def is_var(self) -> bool:
        return self.op in (OP_DATA_VAR, OP_CONTROL_VAR, OP_BOOLVAR)

    @property
    def is_control_var(self) -> bool:
        return self.op == OP_CONTROL_VAR

    @property
    def is_data_var(self) -> bool:
        return self.op == OP_DATA_VAR

    @property
    def value(self) -> int:
        """The concrete value of a constant term."""
        if not self.is_const:
            raise SortError(f"term {self!r} is not a constant")
        return self.payload

    @property
    def name(self) -> str:
        """The name of a variable term."""
        if not self.is_var:
            raise SortError(f"term {self!r} is not a variable")
        return self.payload

    def __repr__(self) -> str:
        return f"Term({to_string(self)})"

    # Identity is the cache key: a pickled copy would alias nothing and
    # silently miss every id()-keyed memo.  Ship a TermArena instead and
    # decode through the default factory (repro.smt.arena).
    def __reduce__(self):
        raise TypeError(
            "terms are not picklable; encode through repro.smt.arena."
            "TermArena and decode on the other side"
        )


# Operator tags.  Leaves:
OP_BVCONST = "bvconst"
OP_BOOLCONST = "boolconst"
OP_DATA_VAR = "datavar"
OP_CONTROL_VAR = "ctrlvar"
OP_BOOLVAR = "boolvar"
# Bitvector operators (result is a bitvector):
OP_ADD = "bvadd"
OP_SUB = "bvsub"
OP_MUL = "bvmul"
OP_AND = "bvand"
OP_OR = "bvor"
OP_XOR = "bvxor"
OP_NOT = "bvnot"
OP_NEG = "bvneg"
OP_SHL = "bvshl"
OP_LSHR = "bvlshr"
OP_CONCAT = "concat"
OP_EXTRACT = "extract"
OP_ITE = "ite"
# Predicates (result is boolean):
OP_EQ = "eq"
OP_ULT = "ult"
OP_ULE = "ule"
# Boolean connectives:
OP_BAND = "and"
OP_BOR = "or"
OP_BNOT = "not"

_COMMUTATIVE = frozenset({OP_ADD, OP_MUL, OP_AND, OP_OR, OP_XOR, OP_EQ, OP_BAND, OP_BOR})


class TermFactory:
    """Builds and interns terms.

    A factory owns its intern table; terms from different factories may be
    mixed (equality falls back to structural comparison) but doing so
    forfeits the ``is``-equality fast path.  The module-level helpers below
    use a shared default factory, which is what the rest of the codebase
    uses.
    """

    def __init__(self) -> None:
        self._table: dict[tuple, Term] = {}
        self._fresh_counter = itertools.count()

    def _mk(self, op: str, args: tuple, width: int, payload=None) -> Term:
        key = (op, args, width, payload)
        term = self._table.get(key)
        if term is None:
            # setdefault is a single atomic dict operation under the GIL, so
            # two threads racing to intern the same structure both get the
            # one winning object — a plain check-then-store could let a
            # thread switch publish two structurally-equal terms and break
            # every id()-keyed memo.  The batch scheduler's worker pool
            # builds terms concurrently through this shared factory.
            term = self._table.setdefault(key, Term(op, args, width, payload))
        return term

    # -- leaves ------------------------------------------------------------

    def bv_const(self, value: int, width: int) -> Term:
        if width <= 0:
            raise SortError(f"bitvector width must be positive, got {width}")
        return self._mk(OP_BVCONST, (), width, value & ((1 << width) - 1))

    def bool_const(self, value: bool) -> Term:
        return self._mk(OP_BOOLCONST, (), 0, bool(value))

    def data_var(self, name: str, width: int) -> Term:
        if width <= 0:
            raise SortError(f"bitvector width must be positive, got {width}")
        return self._mk(OP_DATA_VAR, (), width, name)

    def control_var(self, name: str, width: int) -> Term:
        if width <= 0:
            raise SortError(f"bitvector width must be positive, got {width}")
        return self._mk(OP_CONTROL_VAR, (), width, name)

    def bool_var(self, name: str) -> Term:
        return self._mk(OP_BOOLVAR, (), 0, name)

    def fresh_data_var(self, prefix: str, width: int) -> Term:
        """A data-plane variable with a never-before-used name.

        Used by the overapproximation path: replacing a control symbol with
        a fresh unconstrained data symbol is exactly "assume this entry set
        covers every action and parameter".
        """
        return self.data_var(f"{prefix}!{next(self._fresh_counter)}", width)

    # -- interior nodes -----------------------------------------------------

    def _require_bv(self, *terms: Term) -> int:
        width = terms[0].width
        for term in terms:
            if not term.is_bv:
                raise SortError(f"expected bitvector, got boolean {term!r}")
            if term.width != width:
                raise SortError(
                    f"width mismatch: {term.width} vs {width} in {terms!r}"
                )
        return width

    def _require_bool(self, *terms: Term) -> None:
        for term in terms:
            if not term.is_bool:
                raise SortError(f"expected boolean, got {term!r}")

    def _binop(self, op: str, a: Term, b: Term) -> Term:
        width = self._require_bv(a, b)
        if op in _COMMUTATIVE and id(b) < id(a):
            a, b = b, a  # canonical argument order for commutative ops
        return self._mk(op, (a, b), width)

    def add(self, a: Term, b: Term) -> Term:
        return self._binop(OP_ADD, a, b)

    def sub(self, a: Term, b: Term) -> Term:
        width = self._require_bv(a, b)
        return self._mk(OP_SUB, (a, b), width)

    def mul(self, a: Term, b: Term) -> Term:
        return self._binop(OP_MUL, a, b)

    def bv_and(self, a: Term, b: Term) -> Term:
        return self._binop(OP_AND, a, b)

    def bv_or(self, a: Term, b: Term) -> Term:
        return self._binop(OP_OR, a, b)

    def bv_xor(self, a: Term, b: Term) -> Term:
        return self._binop(OP_XOR, a, b)

    def bv_not(self, a: Term) -> Term:
        width = self._require_bv(a)
        return self._mk(OP_NOT, (a,), width)

    def neg(self, a: Term) -> Term:
        width = self._require_bv(a)
        return self._mk(OP_NEG, (a,), width)

    def shl(self, a: Term, b: Term) -> Term:
        width = self._require_bv(a, b)
        return self._mk(OP_SHL, (a, b), width)

    def lshr(self, a: Term, b: Term) -> Term:
        width = self._require_bv(a, b)
        return self._mk(OP_LSHR, (a, b), width)

    def concat(self, a: Term, b: Term) -> Term:
        self._require_bv(a)
        self._require_bv(b)
        return self._mk(OP_CONCAT, (a, b), a.width + b.width)

    def extract(self, a: Term, hi: int, lo: int) -> Term:
        self._require_bv(a)
        if not (0 <= lo <= hi < a.width):
            raise SortError(f"extract [{hi}:{lo}] out of range for width {a.width}")
        return self._mk(OP_EXTRACT, (a,), hi - lo + 1, (hi, lo))

    def ite(self, cond: Term, then: Term, orelse: Term) -> Term:
        self._require_bool(cond)
        if then.is_bool != orelse.is_bool:
            raise SortError("ite branches must share a sort")
        if then.is_bv:
            width = self._require_bv(then, orelse)
        else:
            width = 0
        return self._mk(OP_ITE, (cond, then, orelse), width)

    # -- predicates ---------------------------------------------------------

    def eq(self, a: Term, b: Term) -> Term:
        if a.is_bool and b.is_bool:
            if id(b) < id(a):
                a, b = b, a
            return self._mk(OP_EQ, (a, b), 0)
        self._require_bv(a, b)
        if id(b) < id(a):
            a, b = b, a
        return self._mk(OP_EQ, (a, b), 0)

    def ult(self, a: Term, b: Term) -> Term:
        self._require_bv(a, b)
        return self._mk(OP_ULT, (a, b), 0)

    def ule(self, a: Term, b: Term) -> Term:
        self._require_bv(a, b)
        return self._mk(OP_ULE, (a, b), 0)

    # -- boolean connectives --------------------------------------------------

    def bool_and(self, *terms: Term) -> Term:
        self._require_bool(*terms)
        if not terms:
            return self.bool_const(True)
        if len(terms) == 1:
            return terms[0]
        args = tuple(sorted(terms, key=id))
        return self._mk(OP_BAND, args, 0)

    def bool_or(self, *terms: Term) -> Term:
        self._require_bool(*terms)
        if not terms:
            return self.bool_const(False)
        if len(terms) == 1:
            return terms[0]
        args = tuple(sorted(terms, key=id))
        return self._mk(OP_BOR, args, 0)

    def bool_not(self, a: Term) -> Term:
        self._require_bool(a)
        return self._mk(OP_BNOT, (a,), 0)

    def implies(self, a: Term, b: Term) -> Term:
        return self.bool_or(self.bool_not(a), b)


#: The shared factory used by the module-level constructors.
DEFAULT_FACTORY = TermFactory()

# Module-level constructors bound to the default factory.  These are what
# the rest of the codebase imports; keeping one shared intern table is what
# makes cross-module term identity work.
bv_const = DEFAULT_FACTORY.bv_const
bool_const = DEFAULT_FACTORY.bool_const
data_var = DEFAULT_FACTORY.data_var
control_var = DEFAULT_FACTORY.control_var
bool_var = DEFAULT_FACTORY.bool_var
fresh_data_var = DEFAULT_FACTORY.fresh_data_var
add = DEFAULT_FACTORY.add
sub = DEFAULT_FACTORY.sub
mul = DEFAULT_FACTORY.mul
bv_and = DEFAULT_FACTORY.bv_and
bv_or = DEFAULT_FACTORY.bv_or
bv_xor = DEFAULT_FACTORY.bv_xor
bv_not = DEFAULT_FACTORY.bv_not
neg = DEFAULT_FACTORY.neg
shl = DEFAULT_FACTORY.shl
lshr = DEFAULT_FACTORY.lshr
concat = DEFAULT_FACTORY.concat
extract = DEFAULT_FACTORY.extract
ite = DEFAULT_FACTORY.ite
eq = DEFAULT_FACTORY.eq
ult = DEFAULT_FACTORY.ult
ule = DEFAULT_FACTORY.ule
bool_and = DEFAULT_FACTORY.bool_and
bool_or = DEFAULT_FACTORY.bool_or
bool_not = DEFAULT_FACTORY.bool_not
implies = DEFAULT_FACTORY.implies

TRUE = bool_const(True)
FALSE = bool_const(False)


def ne(a: Term, b: Term) -> Term:
    """Disequality, expressed as ``not (a == b)``."""
    return bool_not(eq(a, b))


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def iter_dag(term: Term) -> Iterator[Term]:
    """Yield every node of the term DAG exactly once (post-order)."""
    seen: set[int] = set()
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
        else:
            stack.append((node, True))
            for child in node.args:
                if id(child) not in seen:
                    stack.append((child, False))


def variables(term: Term) -> set[Term]:
    """All variable leaves reachable from ``term``."""
    return {node for node in iter_dag(term) if node.is_var}


def control_variables(term: Term) -> set[Term]:
    """The control-plane symbols in ``term`` — the taint sources."""
    return {node for node in iter_dag(term) if node.is_control_var}


def data_variables(term: Term) -> set[Term]:
    return {node for node in iter_dag(term) if node.is_data_var}


def dag_size(term: Term) -> int:
    """Number of unique nodes in the term DAG."""
    return sum(1 for _ in iter_dag(term))


#: Process-wide tree-size memo.  Keyed on the Term itself (not ``id``) so
#: the cache holds strong references to its keys; terms are immutable, so
#: entries are valid forever.  The executability budget check consults
#: ``tree_size`` on the same large residual DAGs on every update — this
#: memo makes the repeat checks O(1).
_TREE_SIZE_MEMO: dict["Term", int] = {}


def tree_size(term: Term, _memo: Optional[dict[int, int]] = None) -> int:
    """Number of nodes counting shared subterms once per occurrence.

    This is the "expression complexity" metric the paper blames for
    slowdowns with large tables: nesting makes the *tree* explode even when
    the DAG stays small.  Results are memoized process-wide; pass an
    explicit ``_memo`` (keyed on ``id``) to bypass the shared cache.
    """
    if _memo is not None:
        for node in iter_dag(term):  # post-order: children first
            if id(node) not in _memo:
                _memo[id(node)] = 1 + sum(_memo[id(arg)] for arg in node.args)
        return _memo[id(term)]
    memo = _TREE_SIZE_MEMO
    cached = memo.get(term)
    if cached is not None:
        return cached
    # Post-order walk that treats already-memoized subterms as leaves, so
    # an incremental update only pays for its delta layer.
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in memo:
            continue
        if expanded:
            memo[node] = 1 + sum(memo[arg] for arg in node.args)
        else:
            stack.append((node, True))
            for child in node.args:
                if child not in memo:
                    stack.append((child, False))
    return memo[term]


# ---------------------------------------------------------------------------
# Concrete evaluation (the testing oracle for the simplifier and solver)
# ---------------------------------------------------------------------------


def evaluate(term: Term, assignment: dict[str, int]) -> int:
    """Evaluate ``term`` under a full concrete assignment.

    Boolean results are reported as 0/1.  Raises ``KeyError`` for
    unassigned variables — evaluation is only meaningful when closed.
    Iterative (post-order over the DAG) so deep ite chains are fine.
    """
    memo: dict[int, int] = {}

    def walk(node: Term) -> int:
        return memo[id(node)]

    for node in iter_dag(term):
        if id(node) not in memo:
            memo[id(node)] = _eval_node(node, walk, assignment)
    return memo[id(term)]


def _eval_node(node: Term, walk, assignment: dict[str, int]) -> int:
    op = node.op
    mask = (1 << node.width) - 1 if node.width else 1
    if op == OP_BVCONST:
        return node.payload
    if op == OP_BOOLCONST:
        return int(node.payload)
    if op in (OP_DATA_VAR, OP_CONTROL_VAR, OP_BOOLVAR):
        return assignment[node.payload] & mask
    if op == OP_ADD:
        return (walk(node.args[0]) + walk(node.args[1])) & mask
    if op == OP_SUB:
        return (walk(node.args[0]) - walk(node.args[1])) & mask
    if op == OP_MUL:
        return (walk(node.args[0]) * walk(node.args[1])) & mask
    if op == OP_AND:
        return walk(node.args[0]) & walk(node.args[1])
    if op == OP_OR:
        return walk(node.args[0]) | walk(node.args[1])
    if op == OP_XOR:
        return walk(node.args[0]) ^ walk(node.args[1])
    if op == OP_NOT:
        return ~walk(node.args[0]) & mask
    if op == OP_NEG:
        return (-walk(node.args[0])) & mask
    if op == OP_SHL:
        shift = walk(node.args[1])
        return (walk(node.args[0]) << shift) & mask if shift < node.width else 0
    if op == OP_LSHR:
        shift = walk(node.args[1])
        return (walk(node.args[0]) >> shift) if shift < node.width else 0
    if op == OP_CONCAT:
        lo_width = node.args[1].width
        return (walk(node.args[0]) << lo_width) | walk(node.args[1])
    if op == OP_EXTRACT:
        hi, lo = node.payload
        return (walk(node.args[0]) >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op == OP_ITE:
        return walk(node.args[1]) if walk(node.args[0]) else walk(node.args[2])
    if op == OP_EQ:
        return int(walk(node.args[0]) == walk(node.args[1]))
    if op == OP_ULT:
        return int(walk(node.args[0]) < walk(node.args[1]))
    if op == OP_ULE:
        return int(walk(node.args[0]) <= walk(node.args[1]))
    if op == OP_BAND:
        return int(all(walk(arg) for arg in node.args))
    if op == OP_BOR:
        return int(any(walk(arg) for arg in node.args))
    if op == OP_BNOT:
        return int(not walk(node.args[0]))
    raise SortError(f"unknown operator {op!r}")


# ---------------------------------------------------------------------------
# Printing (paper notation: |x| control symbols, @x@ data symbols)
# ---------------------------------------------------------------------------

_INFIX = {
    OP_ADD: "+", OP_SUB: "-", OP_MUL: "*",
    OP_AND: "&", OP_OR: "|", OP_XOR: "^",
    OP_SHL: "<<", OP_LSHR: ">>",
    OP_EQ: "==", OP_ULT: "<", OP_ULE: "<=",
    OP_CONCAT: "++",
}


def to_string(term: Term, max_depth: int = 40) -> str:
    """Render a term in the paper's notation.

    Control-plane symbols print as ``|name|``, data-plane symbols as
    ``@name@`` — matching Fig. 5 of the paper.  Deeply nested terms are
    elided with ``...`` past ``max_depth``.
    """

    def walk(node: Term, depth: int) -> str:
        if depth > max_depth:
            return "..."
        op = node.op
        if op == OP_BVCONST:
            return f"{node.payload:#x}"
        if op == OP_BOOLCONST:
            return "true" if node.payload else "false"
        if op == OP_DATA_VAR:
            return f"@{node.payload}@"
        if op == OP_CONTROL_VAR:
            return f"|{node.payload}|"
        if op == OP_BOOLVAR:
            return f"?{node.payload}?"
        if op in _INFIX:
            a, b = node.args
            return f"({walk(a, depth + 1)} {_INFIX[op]} {walk(b, depth + 1)})"
        if op == OP_NOT:
            return f"~{walk(node.args[0], depth + 1)}"
        if op == OP_NEG:
            return f"-{walk(node.args[0], depth + 1)}"
        if op == OP_BNOT:
            return f"!{walk(node.args[0], depth + 1)}"
        if op == OP_BAND:
            return "(" + " && ".join(walk(a, depth + 1) for a in node.args) + ")"
        if op == OP_BOR:
            return "(" + " || ".join(walk(a, depth + 1) for a in node.args) + ")"
        if op == OP_ITE:
            c, t, e = node.args
            return (
                f"({walk(c, depth + 1)} ? {walk(t, depth + 1)}"
                f" : {walk(e, depth + 1)})"
            )
        if op == OP_EXTRACT:
            hi, lo = node.payload
            return f"{walk(node.args[0], depth + 1)}[{hi}:{lo}]"
        raise SortError(f"unknown operator {op!r}")

    return walk(term, 0)
