"""Device targets: the BMv2 interpreter and the Tofino RMT model.

Every backend implements the :class:`~repro.targets.base.Target` ABC and
registers itself by name; resolve names with :func:`create_target`.
"""

from repro.targets.base import (
    LoweredUpdate,
    NO_TARGET,
    Target,
    TargetError,
    UnknownTargetError,
    available_targets,
    create_target,
    register_target,
)
