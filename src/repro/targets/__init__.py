"""Device targets: the BMv2 interpreter and the Tofino RMT model."""
