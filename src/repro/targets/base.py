"""The unified device-backend interface and the target registry.

Every device backend — the Tofino RMT model, the BMv2 software switch,
the incremental Tofino recompiler — implements one :class:`Target` ABC:

* :meth:`Target.compile` — lower a (specialized) program to the device,
  returning the backend's compile report;
* :meth:`Target.lower_update` — push one *forwarded* control-plane update
  to the device untouched (the cheap path the paper's pipeline protects);
* :meth:`Target.resources` — the device resource accounting for a
  program, where the backend models any.

Backends register themselves by name; the engine and the CLI resolve
names through :func:`create_target`, so an unknown ``--target`` fails
eagerly with the list of registered backends instead of deep inside
lowering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, Optional

from repro.errors import FlayError, STAGE_LOWER

#: The pseudo-target meaning "no device attached".
NO_TARGET = "none"


class TargetError(FlayError):
    """A backend could not lower the program or an update."""

    default_stage = STAGE_LOWER


class UnknownTargetError(TargetError, ValueError):
    """The requested backend name is not registered."""


@dataclass(frozen=True)
class LoweredUpdate:
    """A forwarded update as handed to the device driver.

    ``modeled_micros`` is the modeled driver write latency — the cost of
    the paper's fast path (microseconds, vs. seconds for a recompile).
    """

    target: str
    update: object
    table: Optional[str]
    modeled_micros: float

    def describe(self) -> str:
        where = f" into {self.table}" if self.table else ""
        return f"{self.target}: driver write{where} (~{self.modeled_micros:.0f} µs)"


class Target(ABC):
    """A device backend the engine can lower programs and updates onto."""

    #: Registry name of the backend (subclasses override).
    name: ClassVar[str] = "abstract"
    #: Modeled per-entry driver write latency in microseconds.
    update_micros: ClassVar[float] = 10.0

    @abstractmethod
    def compile(self, program):
        """Lower a whole program; returns the backend's compile report."""

    def lower_update(self, update) -> LoweredUpdate:
        """Push one forwarded update to the device without recompiling."""
        table = getattr(update, "table", None)
        if table is None:
            table = getattr(update, "value_set", None)
        return LoweredUpdate(
            target=self.name,
            update=update,
            table=table,
            modeled_micros=self.update_micros,
        )

    def lower_batch(self, updates) -> list:
        """Push a forwarded burst to the device, in submission order.

        The batch scheduler may coalesce and reorder updates *internally*
        for verdict computation, but the device driver always receives the
        stream exactly as the control plane submitted it — this hook is the
        single place that ordering contract lives, and backends with a
        native bulk-write API can override it.
        """
        return [self.lower_update(update) for update in updates]

    def resources(self, program):
        """Device resource accounting for ``program`` (None if unmodeled)."""
        return None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[str], Target]] = {}


def register_target(name: str, factory: Callable[[str], Target]) -> None:
    """Register a backend factory: ``factory(program_name) -> Target``."""
    _REGISTRY[name] = factory


def available_targets() -> tuple:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_target(
    name: Optional[str], program_name: str = "program"
) -> Optional[Target]:
    """Instantiate a backend by name; ``"none"``/``None`` yields no target.

    Raises :class:`UnknownTargetError` (naming the registered backends)
    for anything else — this is the facade's eager ``--target`` check.
    """
    if name is None or name == NO_TARGET:
        return None
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(available_targets())
        raise UnknownTargetError(
            f"unknown target {name!r}; registered backends: {known} "
            f"(or {NO_TARGET!r} for no device)"
        )
    return factory(program_name)


# Built-in backends.  The factories import lazily so that merely resolving
# a name does not pull in every backend's dependency graph.


def _tofino(program_name: str) -> Target:
    from repro.targets.tofino.compiler import TofinoCompiler

    return TofinoCompiler(program_name=program_name)


def _tofino_incremental(program_name: str) -> Target:
    from repro.targets.tofino.incremental import IncrementalTofinoCompiler

    return IncrementalTofinoCompiler(program_name=program_name)


def _bmv2(program_name: str) -> Target:
    from repro.targets.bmv2.compiler import Bmv2Compiler

    return Bmv2Compiler(program_name=program_name)


register_target("tofino", _tofino)
register_target("tofino-incremental", _tofino_incremental)
register_target("bmv2", _bmv2)
