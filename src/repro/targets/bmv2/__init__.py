"""BMv2 stand-in: reference interpreter + fast compiler model."""

from repro.targets.bmv2.compiler import Bmv2CompileReport, Bmv2Compiler
from repro.targets.bmv2.interpreter import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
)
from repro.targets.bmv2.packet import Packet, PacketBuilder, PacketUnderflow
