"""BMv2 device-compiler model: fast software-switch compiles."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.ir.metrics import measure
from repro.p4 import ast_nodes as ast
from repro.targets.base import Target


@dataclass
class Bmv2CompileReport:
    program_name: str
    modeled_seconds: float
    actual_seconds: float
    statements: int

    def describe(self) -> str:
        return f"{self.program_name}: modeled {self.modeled_seconds:.2f} s (bmv2)"


class Bmv2Compiler(Target):
    """p4c-bm2-ss stand-in: compiles are cheap, roughly linear in size."""

    name = "bmv2"
    update_micros = 25.0  # software-switch RPC write

    def __init__(self, program_name: str = "program") -> None:
        self.program_name = program_name
        self.compile_count = 0

    def compile(self, program: ast.Program) -> Bmv2CompileReport:
        start = time.perf_counter()
        metrics = measure(program)
        self.compile_count += 1
        return Bmv2CompileReport(
            program_name=self.program_name,
            modeled_seconds=0.4 + 0.002 * metrics.statements,
            actual_seconds=time.perf_counter() - start,
            statements=metrics.statements,
        )
