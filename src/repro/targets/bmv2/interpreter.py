"""Reference interpreter (the BMv2 stand-in).

Executes a program concretely on a packet under an installed control-plane
configuration.  Its role in the reproduction is the soundness oracle: for
every packet and every configuration, the original and the Flay-specialized
program must produce identical outputs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FlayError, STAGE_INTERPRET
from repro.p4 import ast_nodes as ast
from repro.p4.errors import TypeCheckError
from repro.p4.types import TypeEnv, eval_const_expr, lvalue_path
from repro.runtime.entries import TableEntry, match_hits
from repro.targets.bmv2.packet import Packet, PacketUnderflow

DROP_PATH = "std.drop"
PARSER_ERROR_PATH = "std.parser_error"
VALID_SUFFIX = ".$valid"

_MAX_PARSER_STEPS = 512


class InterpreterError(FlayError, RuntimeError):
    """The program used a construct the interpreter cannot execute."""

    default_stage = STAGE_INTERPRET


class _ExitPipeline(Exception):
    """Raised by ``exit`` to unwind to the pipeline driver."""


class _ReturnAction(Exception):
    """Raised by ``return`` to unwind to the end of the action body."""


@dataclass
class ExecutionResult:
    """Concrete outputs of one packet's traversal."""

    store: dict  # path → int (booleans as 0/1)
    widths: dict  # path → bit width (0 for booleans)
    dropped: bool
    parser_error: bool
    trace: list = field(default_factory=list)  # human-readable steps

    def output_view(self, ignore_prefixes: tuple = ()) -> dict:
        """The comparable output: everything except ignored path prefixes."""
        return {
            path: value
            for path, value in sorted(self.store.items())
            if not any(path.startswith(p) for p in ignore_prefixes)
        }


class Interpreter:
    """Concrete executor for one program (original or specialized)."""

    def __init__(self, program: ast.Program, env: Optional[TypeEnv] = None) -> None:
        self.program = program
        self.env = env if env is not None else TypeEnv(program)
        self.pipeline = program.pipeline
        self.parser_decl = program.find(self.pipeline.parser)
        self.controls = [program.find(name) for name in self.pipeline.controls]

    # -- public API ------------------------------------------------------------

    def run(
        self,
        packet: Packet,
        control_plane=None,
        value_sets: Optional[dict] = None,
        registers: Optional[dict] = None,
        intrinsic: Optional[dict] = None,
    ) -> ExecutionResult:
        """Execute the full pipeline on ``packet``.

        ``control_plane`` is a :class:`repro.runtime.semantics.ControlPlaneState`
        (or None for all-empty tables); ``value_sets`` maps qualified or
        local PVS names to value tuples; ``registers`` maps register names
        to mutable lists (shared across packets if the caller keeps them).
        """
        packet.reset()
        state = _RunState(
            env=self.env,
            control_plane=control_plane,
            value_sets=value_sets or {},
            registers=registers if registers is not None else {},
        )
        self._init_store(state)
        for path, value in (intrinsic or {}).items():
            if path not in state.store:
                raise InterpreterError(f"unknown intrinsic path {path!r}")
            width = state.widths[path]
            state.store[path] = value & ((1 << width) - 1) if width else value
        try:
            self._run_parser(state, packet)
            if not state.store[PARSER_ERROR_PATH]:
                for control in self.controls:
                    self._run_control(control, state)
        except _ExitPipeline:
            pass
        return ExecutionResult(
            store=dict(state.store),
            widths=dict(state.widths),
            dropped=bool(state.store[DROP_PATH]),
            parser_error=bool(state.store[PARSER_ERROR_PATH]),
            trace=state.trace,
        )

    # -- store -------------------------------------------------------------------

    def _init_store(self, state: "_RunState") -> None:
        for param in self.parser_decl.params:
            resolved = self.env.resolve(param.type)
            if isinstance(resolved, (ast.BitType, ast.BoolType)):
                state.define(param.name, 0, self.env.width_of(resolved))
                continue
            for info in self.env.flatten(param.name, param.type):
                state.define(info.path, 0, info.width)
            for instance, _ in self.env.header_instances(param.name, param.type):
                state.define(instance + VALID_SUFFIX, 0, 0)
        state.define(DROP_PATH, 0, 0)
        state.define(PARSER_ERROR_PATH, 0, 0)

    # -- parser -------------------------------------------------------------------

    def _run_parser(self, state: "_RunState", packet: Packet) -> None:
        states = {s.name: s for s in self.parser_decl.states}
        unit = _Unit(self.parser_decl.name, self.parser_decl, {})
        current = "start"
        steps = 0
        while current not in (ast.ACCEPT, ast.REJECT):
            steps += 1
            if steps > _MAX_PARSER_STEPS:
                raise InterpreterError("parser did not terminate")
            parser_state = states.get(current)
            if parser_state is None:
                raise InterpreterError(f"unknown parser state {current!r}")
            state.trace.append(f"parser:{current}")
            try:
                for stmt in parser_state.statements:
                    self._exec_stmt(stmt, unit, state, packet)
                current = self._transition(parser_state.transition, unit, state)
            except PacketUnderflow:
                current = ast.REJECT
        if current == ast.REJECT:
            state.store[PARSER_ERROR_PATH] = 1
            state.store[DROP_PATH] = 1

    def _transition(self, transition, unit: "_Unit", state: "_RunState") -> str:
        if isinstance(transition, ast.TransitionDirect):
            return transition.state
        keys = [self._eval(e, unit, state) for e in transition.exprs]
        widths = [self._eval_width(e, unit, state) for e in transition.exprs]
        for case in transition.cases:
            if self._case_matches(case, keys, widths, unit, state):
                return case.state
        return ast.REJECT

    def _case_matches(self, case, keys, widths, unit, state) -> bool:
        for key, width, keyset in zip(keys, widths, case.keys):
            if keyset.is_default:
                continue
            if keyset.value_set_name is not None:
                if keyset.value_set_name in self.env.constants:
                    if key != self.env.constants[keyset.value_set_name]:
                        return False
                    continue
                values = state.lookup_value_set(unit.name, keyset.value_set_name)
                if key not in values:
                    return False
                continue
            value = eval_const_expr(keyset.value, self.env)
            if value is None:
                raise InterpreterError(f"non-constant keyset {keyset!r}")
            if keyset.mask is not None:
                mask = eval_const_expr(keyset.mask, self.env)
                if (key & mask) != (value & mask):
                    return False
            elif key != (value & ((1 << width) - 1)):
                return False
        return True

    # -- controls --------------------------------------------------------------------

    def _run_control(self, control: ast.ControlDecl, state: "_RunState") -> None:
        unit = _Unit(control.name, control, {})
        for local in control.locals:
            if isinstance(local, ast.VarDeclStmt):
                self._exec_stmt(local, unit, state, None)
            elif isinstance(local, ast.InstantiationDecl) and local.kind == "register":
                size = (
                    eval_const_expr(local.args[0], self.env) if local.args else 1024
                )
                state.registers.setdefault(
                    f"{control.name}.{local.name}", [0] * (size or 1024)
                )
        self._exec_block(control.apply, unit, state, None)

    # -- statements ----------------------------------------------------------------------

    def _exec_block(self, block: ast.Block, unit, state, packet) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, unit, state, packet)

    def _exec_stmt(self, stmt, unit, state, packet) -> None:
        if isinstance(stmt, ast.AssignStmt):
            self._exec_assign(stmt, unit, state)
        elif isinstance(stmt, ast.VarDeclStmt):
            width = self.env.width_of(stmt.type)
            value = self._eval(stmt.init, unit, state, width) if stmt.init else 0
            state.define(f"{unit.name}.{stmt.name}", value, width)
        elif isinstance(stmt, ast.IfStmt):
            if self._eval_cond(stmt.cond, unit, state):
                self._exec_block(stmt.then, unit, state, packet)
            elif stmt.orelse is not None:
                self._exec_block(stmt.orelse, unit, state, packet)
        elif isinstance(stmt, ast.MethodCallStmt):
            self._exec_call(stmt.call, unit, state, packet)
        elif isinstance(stmt, ast.ExitStmt):
            raise _ExitPipeline()
        elif isinstance(stmt, ast.ReturnStmt):
            raise _ReturnAction()
        elif isinstance(stmt, ast.SwitchStmt):
            action_run = self._apply_table(stmt.table, unit, state)[1]
            default_body = None
            for case in stmt.cases:
                if case.action is None:
                    default_body = case.body
                elif case.action == action_run:
                    self._exec_block(case.body, unit, state, packet)
                    return
            if default_body is not None:
                self._exec_block(default_body, unit, state, packet)
        else:
            raise InterpreterError(f"cannot execute {stmt!r}")

    def _exec_assign(self, stmt: ast.AssignStmt, unit, state) -> None:
        if isinstance(stmt.lhs, ast.Slice):
            base_path = state.resolve_path(lvalue_path(stmt.lhs.expr), unit.name)
            old = state.store[base_path]
            hi, lo = stmt.lhs.hi, stmt.lhs.lo
            piece = self._eval(stmt.rhs, unit, state, hi - lo + 1)
            mask = ((1 << (hi - lo + 1)) - 1) << lo
            state.store[base_path] = (old & ~mask) | ((piece << lo) & mask)
            return
        path = state.resolve_path(lvalue_path(stmt.lhs), unit.name)
        width = state.widths[path]
        value = self._eval(stmt.rhs, unit, state, width)
        if width:
            value &= (1 << width) - 1
        state.store[path] = value

    def _exec_call(self, call: ast.MethodCall, unit, state, packet) -> None:
        method = call.method
        if method == "apply" and call.target is not None:
            self._apply_table(lvalue_path(call.target), unit, state)
            return
        if method == "pkt_extract":
            if packet is None:
                raise InterpreterError("pkt_extract outside the parser")
            self._extract(call, unit, state, packet)
            return
        if method == "setValid" and call.target is not None:
            state.store[lvalue_path(call.target) + VALID_SUFFIX] = 1
            return
        if method == "setInvalid" and call.target is not None:
            state.store[lvalue_path(call.target) + VALID_SUFFIX] = 0
            return
        if method == "mark_to_drop":
            state.store[DROP_PATH] = 1
            return
        if method in ("count", "execute"):
            return  # counters/meters: stateful but output-invisible
        if method == "read" and call.target is not None:
            reg = state.registers.get(
                f"{unit.name}.{lvalue_path(call.target)}"
            ) or state.registers.get(lvalue_path(call.target))
            dst = state.resolve_path(lvalue_path(call.args[0]), unit.name)
            index = self._eval(call.args[1], unit, state, 32)
            width = state.widths[dst]
            value = reg[index % len(reg)] if reg else 0
            state.store[dst] = value & ((1 << width) - 1) if width else value
            return
        if method == "write" and call.target is not None:
            reg = state.registers.setdefault(
                f"{unit.name}.{lvalue_path(call.target)}", [0] * 1024
            )
            index = self._eval(call.args[0], unit, state, 32)
            value = self._eval(call.args[1], unit, state, 64)
            reg[index % len(reg)] = value
            return
        if call.target is None and isinstance(unit.decl, ast.ControlDecl):
            # Direct action invocation from the apply block.
            for local in unit.decl.locals:
                if isinstance(local, ast.ActionDecl) and local.name == method:
                    args = tuple(
                        self._eval(arg, unit, state, self.env.width_of(p.type))
                        for arg, p in zip(call.args, local.params)
                    )
                    self._run_action(unit.decl, unit, state, method, args)
                    return
        if method in ("hash", "update_checksum"):
            dst = state.resolve_path(lvalue_path(call.args[0]), unit.name)
            width = state.widths[dst]
            material = b"".join(
                self._eval(arg, unit, state, 64).to_bytes(8, "big")
                for arg in call.args[1:]
            )
            digest = zlib.crc32(material)
            state.store[dst] = digest & ((1 << width) - 1) if width else digest & 1
            return
        raise InterpreterError(f"unknown extern {method!r}")

    def _extract(self, call: ast.MethodCall, unit, state, packet: Packet) -> None:
        header_path = lvalue_path(call.args[0])
        header_type = self._header_type_of(header_path)
        for field_decl in self.env.fields_of(header_type):
            width = self.env.width_of(field_decl.type)
            value = packet.extract_bits(width)
            state.store[f"{header_path}.{field_decl.name}"] = value
        state.store[header_path + VALID_SUFFIX] = 1
        state.trace.append(f"extract:{header_path}")

    def _header_type_of(self, header_path: str) -> ast.Type:
        root, _, rest = header_path.partition(".")
        for param in self.parser_decl.params:
            if param.name == root:
                t = param.type
                for part in rest.split("."):
                    t = self.env.member_type(t, part)
                return t
        raise InterpreterError(f"unknown header {header_path!r}")

    # -- tables --------------------------------------------------------------------------

    def _apply_table(self, table_name: str, unit, state) -> tuple[bool, str]:
        """Run a table; returns (hit, action_run)."""
        control = unit.decl
        decl = None
        for local in control.locals:
            if isinstance(local, ast.TableDecl) and local.name == table_name:
                decl = local
                break
        if decl is None:
            raise InterpreterError(
                f"control {control.name!r} has no table {table_name!r}"
            )
        qualified = f"{unit.name}.{table_name}"
        entries: list[TableEntry] = []
        widths: list[int] = []
        if state.control_plane is not None:
            table_state = state.control_plane.tables.get(qualified)
            if table_state is not None:
                entries = table_state.ordered_entries()
                widths = table_state.info.key_widths()
        if not widths:
            widths = [self._eval_width(k.expr, unit, state) for k in decl.keys]
        keys = [
            self._eval(k.expr, unit, state, w) for k, w in zip(decl.keys, widths)
        ]

        for entry in entries:
            if all(
                match_hits(m, k, w)
                for m, k, w in zip(entry.matches, keys, widths)
            ):
                state.trace.append(f"table:{qualified}:hit:{entry.action}")
                self._run_action(control, unit, state, entry.action, entry.args)
                return True, entry.action
        # Miss: run the default action.
        default = decl.default_action
        if default is None:
            if not decl.actions:
                return False, ""
            default = ast.ActionRef(decl.actions[-1].name, ())
        args = tuple(
            eval_const_expr(a, self.env) or 0 for a in default.args
        )
        state.trace.append(f"table:{qualified}:miss:{default.name}")
        self._run_action(control, unit, state, default.name, args)
        return False, default.name

    def _run_action(self, control, unit, state, action_name: str, args: tuple) -> None:
        action = None
        for local in control.locals:
            if isinstance(local, ast.ActionDecl) and local.name == action_name:
                action = local
                break
        if action is None:
            raise InterpreterError(
                f"control {control.name!r} has no action {action_name!r}"
            )
        bindings = {}
        for param, value in zip(action.params, args):
            width = self.env.width_of(param.type)
            bindings[param.name] = (value & ((1 << width) - 1), width)
        inner = _Unit(unit.name, control, bindings)
        try:
            self._exec_block(action.body, inner, state, None)
        except _ReturnAction:
            pass

    # -- expressions --------------------------------------------------------------------------

    def _eval_cond(self, expr, unit, state) -> bool:
        if (
            isinstance(expr, ast.Member)
            and expr.name in ("hit", "miss")
            and isinstance(expr.expr, ast.MethodCall)
            and expr.expr.method == "apply"
        ):
            hit, _ = self._apply_table(lvalue_path(expr.expr.target), unit, state)
            return hit if expr.name == "hit" else not hit
        if isinstance(expr, ast.Unary) and expr.op == "!":
            return not self._eval_cond(expr.expr, unit, state)
        return bool(self._eval(expr, unit, state))

    def _eval_width(self, expr, unit, state) -> int:
        if isinstance(expr, ast.IntLit):
            return expr.width or 32
        if isinstance(expr, ast.Ident):
            if expr.name in unit.bindings:
                return unit.bindings[expr.name][1]
            path = state.resolve_path(expr.name, unit.name, must_exist=False)
            if path is not None:
                return state.widths[path]
            return 32
        if isinstance(expr, ast.Member):
            path = state.resolve_path(lvalue_path(expr), unit.name, must_exist=False)
            if path is not None:
                return state.widths[path]
            return 32
        if isinstance(expr, ast.Slice):
            return expr.hi - expr.lo + 1
        if isinstance(expr, ast.Cast):
            return self.env.width_of(expr.type)
        if isinstance(expr, ast.Unary):
            return self._eval_width(expr.expr, unit, state)
        if isinstance(expr, ast.Binary):
            if expr.op == "++":
                return self._eval_width(expr.left, unit, state) + self._eval_width(
                    expr.right, unit, state
                )
            return max(
                self._eval_width(expr.left, unit, state),
                self._eval_width(expr.right, unit, state),
            )
        if isinstance(expr, ast.Ternary):
            return self._eval_width(expr.then, unit, state)
        return 32

    def _eval(self, expr, unit, state, width_hint: int = 0) -> int:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return int(expr.value)
        if isinstance(expr, ast.Ident):
            if expr.name in unit.bindings:
                return unit.bindings[expr.name][0]
            path = state.resolve_path(expr.name, unit.name, must_exist=False)
            if path is not None:
                return state.store[path]
            if expr.name in self.env.constants:
                return self.env.constants[expr.name]
            raise InterpreterError(f"unknown name {expr.name!r}")
        if isinstance(expr, ast.Member):
            path = state.resolve_path(lvalue_path(expr), unit.name, must_exist=False)
            if path is None:
                raise InterpreterError(f"unknown path {lvalue_path(expr)!r}")
            return state.store[path]
        if isinstance(expr, ast.Slice):
            inner = self._eval(expr.expr, unit, state)
            return (inner >> expr.lo) & ((1 << (expr.hi - expr.lo + 1)) - 1)
        if isinstance(expr, ast.Cast):
            width = self.env.width_of(expr.type)
            return self._eval(expr.expr, unit, state, width) & ((1 << width) - 1)
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return int(not self._eval_cond(expr.expr, unit, state))
            width = self._eval_width(expr.expr, unit, state)
            inner = self._eval(expr.expr, unit, state, width)
            mask = (1 << width) - 1
            if expr.op == "~":
                return ~inner & mask
            if expr.op == "-":
                return -inner & mask
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, unit, state)
        if isinstance(expr, ast.Ternary):
            if self._eval_cond(expr.cond, unit, state):
                return self._eval(expr.then, unit, state, width_hint)
            return self._eval(expr.orelse, unit, state, width_hint)
        if isinstance(expr, ast.MethodCall):
            if expr.method == "isValid" and expr.target is not None:
                return state.store[lvalue_path(expr.target) + VALID_SUFFIX]
            raise InterpreterError(f"cannot evaluate call {expr.method!r}")
        raise InterpreterError(f"cannot evaluate {expr!r}")

    def _eval_binary(self, expr: ast.Binary, unit, state) -> int:
        op = expr.op
        if op in ("&&", "||"):
            left = self._eval_cond(expr.left, unit, state)
            if op == "&&":
                return int(left and self._eval_cond(expr.right, unit, state))
            return int(left or self._eval_cond(expr.right, unit, state))
        width = max(
            self._eval_width(expr.left, unit, state),
            self._eval_width(expr.right, unit, state),
        )
        mask = (1 << width) - 1
        left = self._eval(expr.left, unit, state, width) & mask
        right = self._eval(expr.right, unit, state, width) & mask
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "+":
            return (left + right) & mask
        if op == "-":
            return (left - right) & mask
        if op == "*":
            return (left * right) & mask
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return (left << right) & mask if right < width else 0
        if op == ">>":
            return left >> right if right < width else 0
        if op == "++":
            rwidth = self._eval_width(expr.right, unit, state)
            lraw = self._eval(expr.left, unit, state)
            rraw = self._eval(expr.right, unit, state)
            return (lraw << rwidth) | rraw
        raise InterpreterError(f"unknown operator {op!r}")


@dataclass
class _Unit:
    name: str
    decl: object
    bindings: dict  # action params: name → (value, width)


@dataclass
class _RunState:
    env: TypeEnv
    control_plane: object
    value_sets: dict
    registers: dict
    store: dict = field(default_factory=dict)
    widths: dict = field(default_factory=dict)
    trace: list = field(default_factory=list)

    def define(self, path: str, value: int, width: int) -> None:
        self.store[path] = value
        self.widths[path] = width

    def resolve_path(
        self, path: str, unit_name: str, must_exist: bool = True
    ) -> Optional[str]:
        qualified = f"{unit_name}.{path}"
        if qualified in self.store:
            return qualified
        if path in self.store:
            return path
        if must_exist:
            raise InterpreterError(f"unknown path {path!r}")
        return None

    def lookup_value_set(self, parser_name: str, local_name: str) -> tuple:
        qualified = f"{parser_name}.{local_name}"
        if qualified in self.value_sets:
            return tuple(self.value_sets[qualified])
        if local_name in self.value_sets:
            return tuple(self.value_sets[local_name])
        return ()
