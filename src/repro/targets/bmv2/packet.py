"""Bit-level packets for the reference interpreter."""

from __future__ import annotations

from dataclasses import dataclass


class PacketUnderflow(Exception):
    """An extract ran past the end of the packet (→ parser reject)."""


class Packet:
    """A packet as a bitstring with a read cursor."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.bit_cursor = 0

    @property
    def bit_length(self) -> int:
        return len(self.data) * 8

    @property
    def remaining_bits(self) -> int:
        return self.bit_length - self.bit_cursor

    def extract_bits(self, width: int) -> int:
        """Read ``width`` bits at the cursor (network bit order)."""
        if width > self.remaining_bits:
            raise PacketUnderflow(
                f"need {width} bits, {self.remaining_bits} remain"
            )
        value = 0
        for _ in range(width):
            byte = self.data[self.bit_cursor // 8]
            bit = (byte >> (7 - (self.bit_cursor % 8))) & 1
            value = (value << 1) | bit
            self.bit_cursor += 1
        return value

    def reset(self) -> "Packet":
        self.bit_cursor = 0
        return self


class PacketBuilder:
    """Assemble a packet from (value, width) fields, MSB-first."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def push(self, value: int, width: int) -> "PacketBuilder":
        if not 0 <= value < (1 << width):
            raise ValueError(f"value {value:#x} does not fit in {width} bits")
        for i in range(width - 1, -1, -1):
            self._bits.append((value >> i) & 1)
        return self

    def push_bytes(self, data: bytes) -> "PacketBuilder":
        for byte in data:
            self.push(byte, 8)
        return self

    def build(self, pad_to_bytes: int = 0) -> Packet:
        bits = list(self._bits)
        while len(bits) % 8 != 0:
            bits.append(0)
        while len(bits) // 8 < pad_to_bytes:
            bits.extend([0] * 8)
        data = bytearray()
        for i in range(0, len(bits), 8):
            byte = 0
            for bit in bits[i : i + 8]:
                byte = (byte << 1) | bit
            data.append(byte)
        return Packet(bytes(data))
