"""Tofino stand-in: RMT resource model, stage allocator, compiler model."""

from repro.targets.tofino.allocator import allocate
from repro.targets.tofino.compiler import CompileReport, CostModel, TofinoCompiler
from repro.targets.tofino.resources import (
    PipelineSpec,
    ResourceError,
    ResourceReport,
    StageUsage,
    TOFINO1,
    TOFINO2,
)
