"""Stage allocator: dependency-respecting placement of tables into stages.

Standard RMT allocation: topologically order the table dependency graph,
give every node the earliest stage permitted by its dependencies (match and
action dependencies force strictly later stages; control dependencies force
later-or-equal placement which we conservatively round up to later for
chained tables), then pack greedily subject to per-stage capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.deps import (
    ACTION_DEP,
    CONTROL_DEP,
    MATCH_DEP,
    DependencyGraph,
    TableNode,
    build_dependency_graph,
)
from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv
from repro.targets.tofino.resources import (
    PipelineSpec,
    ResourceError,
    ResourceReport,
    StageUsage,
    TOFINO2,
    table_memory_bits,
)


def allocate(
    program: ast.Program,
    spec: PipelineSpec = TOFINO2,
    env: Optional[TypeEnv] = None,
    graph: Optional[DependencyGraph] = None,
    strict: bool = False,
) -> ResourceReport:
    """Place the program's tables into stages and account resources.

    With ``strict=True`` a program that needs more than ``spec.num_stages``
    stages raises :class:`ResourceError`; by default the report simply
    shows the demanded stage count (so "needs the maximum number of
    stages" — the paper's SCION observation — is expressible as
    ``report.stages_used >= spec.num_stages``).
    """
    if graph is None:
        graph = build_dependency_graph(program, env)

    # Greedy packing in program (topological) order.  Each node's floor is
    # derived from the *final placement* of its predecessors: match/action
    # dependencies force a strictly later stage; a gateway and the tables it
    # guards may share a stage (Tofino resolves gateways in-stage).
    stages: list[StageUsage] = []
    placed: dict[str, int] = {}

    def stage_at(index: int) -> StageUsage:
        while len(stages) <= index:
            stages.append(StageUsage(len(stages)))
        return stages[index]

    phv_fields: set[str] = set()
    for name in graph.order:
        node = graph.nodes[name]
        phv_fields.update(node.reads)
        phv_fields.update(node.writes)
        sram, tcam = _node_memory(node)
        extra_tables = 0 if node.is_gateway else 1
        extra_gateways = 1 if node.is_gateway else 0
        extra_alus = max(1, node.num_actions) if not node.is_gateway else 0
        floor = 0
        for edge in graph.predecessors(name):
            pred_stage = placed.get(edge.src, 0)
            if edge.kind in (MATCH_DEP, ACTION_DEP):
                floor = max(floor, pred_stage + 1)
            else:  # CONTROL_DEP: same stage as the gateway is fine
                floor = max(floor, pred_stage)

        # A table whose memory demand exceeds one stage's capacity spans
        # several consecutive stages (how real RMT compilers place big
        # LPM/exact tables).
        span = max(
            1,
            -(-sram // spec.sram_bits_per_stage),
            -(-tcam // spec.tcam_bits_per_stage),
        )
        if span > 1:
            index = max(floor, len(stages))
            sram_left, tcam_left = sram, tcam
            for offset in range(span):
                stage = stage_at(index + offset)
                stage.tables.append(name)
                take_sram = min(sram_left, spec.sram_bits_per_stage)
                take_tcam = min(tcam_left, spec.tcam_bits_per_stage)
                stage.sram_bits += take_sram
                stage.tcam_bits += take_tcam
                sram_left -= take_sram
                tcam_left -= take_tcam
                if offset == 0:
                    stage.table_count += extra_tables
                    stage.gateways += extra_gateways
                    stage.alus += extra_alus
            placed[name] = index + span - 1
            continue

        index = floor
        while True:
            stage = stage_at(index)
            if stage.fits(spec, sram, tcam, extra_tables, extra_gateways, extra_alus):
                break
            index += 1
        stage.tables.append(name)
        stage.table_count += extra_tables
        stage.sram_bits += sram
        stage.tcam_bits += tcam
        stage.gateways += extra_gateways
        stage.alus += extra_alus
        placed[name] = index

    stages_used = len(stages)
    if strict and stages_used > spec.num_stages:
        raise ResourceError(
            f"program needs {stages_used} stages, {spec.name} has {spec.num_stages}"
        )

    phv_bits = _phv_bits(phv_fields, graph)
    return ResourceReport(
        spec=spec,
        stages_used=stages_used,
        stage_usages=stages,
        total_sram_bits=sum(s.sram_bits for s in stages),
        total_tcam_bits=sum(s.tcam_bits for s in stages),
        phv_bits_used=phv_bits,
        total_tables=sum(1 for n in graph.nodes.values() if not n.is_gateway),
        total_gateways=sum(1 for n in graph.nodes.values() if n.is_gateway),
    )


def _node_memory(node: TableNode) -> tuple[int, int]:
    if node.is_gateway:
        return 0, 0
    return table_memory_bits(
        node.exact_key_bits,
        node.ternary_key_bits,
        node.lpm_key_bits,
        node.size,
        node.action_param_bits,
    )


def _phv_bits(fields: set[str], graph: DependencyGraph) -> int:
    """Rough PHV accounting: 32 bits per referenced scalar container.

    We do not track widths through the dependency graph's field paths, so
    every referenced field is charged one 32-bit container slot — a
    conservative, monotone proxy that preserves the paper's "fewer parse
    calls reduce PHV usage" behaviour.
    """
    return 32 * len(fields)
