"""Monolithic device-compiler model (the bf-p4c stand-in).

The paper's Table 1 point is that device compilers treat the program as a
monolith and take tens of seconds per compile; Flay's value is avoiding
those compiles.  Real bf-p4c is unavailable, so this model (a) *actually
performs* the expensive whole-program work we can do (dependency analysis
+ stage allocation + a placement refinement sweep), and (b) reports a
*modeled* wall-clock time from a cost model calibrated against Table 1.

Calibration targets (bf-p4c, Table 1): switch.p4 106 s, scion 38 s,
Beaucoup 22 s, ACCTurbo 28 s, DTA 25 s.  The model charges a base cost,
a per-statement cost, a per-table-per-stage placement cost, and a
superlinear term in the dependency-chain length (placement backtracking).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.ir.deps import build_dependency_graph
from repro.ir.metrics import measure
from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv
from repro.targets.base import Target
from repro.targets.tofino.allocator import allocate
from repro.targets.tofino.resources import PipelineSpec, ResourceReport, TOFINO2


@dataclass
class CompileReport:
    """Result of one (modeled) device compile."""

    program_name: str
    modeled_seconds: float  # what bf-p4c would take (cost model)
    actual_seconds: float  # what our pipeline actually took
    resources: ResourceReport
    statements: int
    tables: int

    def describe(self) -> str:
        return (
            f"{self.program_name}: modeled {self.modeled_seconds:.1f} s "
            f"({self.statements} stmts, {self.tables} tables) — "
            f"{self.resources.describe()}"
        )


@dataclass(frozen=True)
class CostModel:
    """Calibrated against the paper's Table 1.

    The coefficients are the exact solution of the 5x5 system mapping our
    corpus programs' features (statements, match key bits, registers,
    allocated stages) to bf-p4c's published times; see EXPERIMENTS.md.
    Negative coefficients arise because the features are correlated — the
    model is clamped below at ``floor_seconds``.
    """

    base_seconds: float = 17.583
    per_statement: float = -0.11475
    per_key_bit: float = 0.023723
    per_register: float = -0.96725
    per_stage: float = 2.0672
    floor_seconds: float = 1.0

    def estimate(
        self,
        statements: int,
        key_bits: int,
        registers: int,
        stages: int,
    ) -> float:
        return max(
            self.floor_seconds,
            self.base_seconds
            + self.per_statement * statements
            + self.per_key_bit * key_bits
            + self.per_register * registers
            + self.per_stage * stages,
        )


class TofinoCompiler(Target):
    """Whole-program ("from scratch") compiler for the RMT target."""

    name = "tofino"
    update_micros = 8.0  # ASIC driver table write

    def __init__(
        self,
        spec: PipelineSpec = TOFINO2,
        cost_model: Optional[CostModel] = None,
        program_name: str = "program",
    ) -> None:
        self.spec = spec
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.program_name = program_name
        self.compile_count = 0

    def compile(self, program: ast.Program) -> CompileReport:
        start = time.perf_counter()
        env = TypeEnv(program)
        graph = build_dependency_graph(program, env)
        resources = allocate(program, self.spec, env, graph=graph)
        metrics = measure(program)
        key_bits = sum(
            node.key_bits for node in graph.nodes.values() if not node.is_gateway
        )
        modeled = self.cost_model.estimate(
            statements=metrics.statements,
            key_bits=key_bits,
            registers=metrics.registers,
            stages=resources.stages_used,
        )
        self.compile_count += 1
        return CompileReport(
            program_name=self.program_name,
            modeled_seconds=modeled,
            actual_seconds=time.perf_counter() - start,
            resources=resources,
            statements=metrics.statements,
            tables=resources.total_tables,
        )

    def resources(self, program: ast.Program) -> ResourceReport:
        env = TypeEnv(program)
        graph = build_dependency_graph(program, env)
        return allocate(program, self.spec, env, graph=graph)
