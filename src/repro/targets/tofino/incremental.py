"""Incremental device recompilation (the paper's first future-work item).

§6: "we are at the mercy of device-specific compilers that treat the whole
program as a monolithic unit to be compiled from scratch.  Recent work on
modularity ... points the way towards recompilation of just the modules
(such as specific tables) that have changed."

This module models that future: diff the previous and the new specialized
program at table granularity, and charge compile time only for the changed
tables (plus a fixed relink/validation pass), while whole-program
placement still runs to produce the resource report.  The bench
``test_ablation_incremental_compile`` compares it against the monolithic
model on the paper's update sequences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.deps import build_dependency_graph
from repro.ir.metrics import measure
from repro.p4 import ast_nodes as ast
from repro.p4.printer import print_stmt
from repro.p4.types import TypeEnv
from repro.targets.base import Target
from repro.targets.tofino.allocator import allocate
from repro.targets.tofino.compiler import CompileReport, CostModel, TofinoCompiler
from repro.targets.tofino.resources import PipelineSpec, TOFINO2


@dataclass(frozen=True)
class ProgramDelta:
    """Table-granular difference between two specialized programs."""

    added_tables: tuple
    removed_tables: tuple
    changed_tables: tuple
    unchanged_tables: tuple
    parser_changed: bool

    @property
    def touched(self) -> int:
        return len(self.added_tables) + len(self.removed_tables) + len(self.changed_tables)

    @property
    def is_noop(self) -> bool:
        return self.touched == 0 and not self.parser_changed

    def describe(self) -> str:
        return (
            f"+{len(self.added_tables)} -{len(self.removed_tables)} "
            f"~{len(self.changed_tables)} tables "
            f"({len(self.unchanged_tables)} untouched"
            f"{', parser changed' if self.parser_changed else ''})"
        )


def _table_signatures(program: ast.Program) -> dict[str, str]:
    """Stable per-table fingerprints: keys, actions, default, size."""
    signatures: dict[str, str] = {}
    for control in program.controls():
        if control.name not in program.pipeline.controls:
            continue
        for local in control.locals:
            if not isinstance(local, ast.TableDecl):
                continue
            parts = [
                f"{_expr_text(k.expr)}:{k.match_kind}" for k in local.keys
            ]
            parts.append("|".join(a.name for a in local.actions))
            if local.default_action is not None:
                parts.append(f"default={local.default_action.name}")
            parts.append(f"size={local.size}")
            # Action bodies are part of the table's compiled artifact.
            for ref in local.actions:
                body = _action_body_text(control, ref.name)
                parts.append(body)
            signatures[f"{control.name}.{local.name}"] = ";".join(parts)
    return signatures


def _expr_text(expr) -> str:
    from repro.p4.printer import print_expr

    return print_expr(expr)


def _action_body_text(control: ast.ControlDecl, name: str) -> str:
    for local in control.locals:
        if isinstance(local, ast.ActionDecl) and local.name == name:
            return "\n".join(print_stmt(s) for s in local.body.statements)
    return ""


def _parser_text(program: ast.Program) -> str:
    from repro.p4.printer import print_program

    parser_name = program.pipeline.parser
    decl = program.find(parser_name)
    # Cheap but stable: print the whole parser declaration.
    return print_program(ast.Program((decl,)))


def diff_programs(previous: ast.Program, current: ast.Program) -> ProgramDelta:
    """Table-granular diff between two programs."""
    prev_sigs = _table_signatures(previous)
    curr_sigs = _table_signatures(current)
    added = tuple(sorted(set(curr_sigs) - set(prev_sigs)))
    removed = tuple(sorted(set(prev_sigs) - set(curr_sigs)))
    common = set(prev_sigs) & set(curr_sigs)
    changed = tuple(sorted(n for n in common if prev_sigs[n] != curr_sigs[n]))
    unchanged = tuple(sorted(n for n in common if prev_sigs[n] == curr_sigs[n]))
    parser_changed = _parser_text(previous) != _parser_text(current)
    return ProgramDelta(added, removed, changed, unchanged, parser_changed)


@dataclass
class IncrementalCompileReport:
    """Result of one incremental compile."""

    delta: ProgramDelta
    modeled_seconds: float
    monolithic_seconds: float  # what a from-scratch compile would have cost
    actual_seconds: float
    resources: object

    @property
    def speedup(self) -> float:
        if self.modeled_seconds == 0:
            return float("inf")
        return self.monolithic_seconds / self.modeled_seconds

    def describe(self) -> str:
        return (
            f"incremental compile: {self.delta.describe()} — "
            f"{self.modeled_seconds:.1f} s vs {self.monolithic_seconds:.1f} s "
            f"monolithic ({self.speedup:.1f}x)"
        )


@dataclass(frozen=True)
class IncrementalCostModel:
    """Per-module compile costs for the modular-compiler future.

    The fixed relink pass covers final validation and configuration
    download; per-table costs are charged only for touched tables.  Parser
    changes force a pipeline-wide re-placement (the expensive case the
    paper wants hardware support for).
    """

    relink_seconds: float = 1.5
    per_table_seconds: float = 0.45
    per_key_bit_seconds: float = 0.004
    parser_rebuild_seconds: float = 6.0


class IncrementalTofinoCompiler(Target):
    """A device compiler that recompiles only what changed.

    Drop-in for :class:`TofinoCompiler` in the Flay runtime: the first
    ``compile`` is monolithic (there is nothing to diff against); later
    calls are charged per changed table.
    """

    name = "tofino-incremental"
    update_micros = 8.0

    def __init__(
        self,
        spec: PipelineSpec = TOFINO2,
        cost_model: Optional[IncrementalCostModel] = None,
        monolithic: Optional[TofinoCompiler] = None,
        program_name: str = "program",
    ) -> None:
        self.spec = spec
        self.cost_model = cost_model if cost_model is not None else IncrementalCostModel()
        self.monolithic = monolithic if monolithic is not None else TofinoCompiler(
            spec=spec, program_name=program_name
        )
        self.program_name = program_name
        self.compile_count = 0
        self._previous: Optional[ast.Program] = None
        self.reports: list = []

    def compile(self, program: ast.Program):
        start = time.perf_counter()
        monolithic_report = self.monolithic.compile(program)
        self.compile_count += 1
        if self._previous is None:
            self._previous = program
            self.reports.append(monolithic_report)
            return monolithic_report

        delta = diff_programs(self._previous, program)
        self._previous = program
        env = TypeEnv(program)
        graph = build_dependency_graph(program, env)
        touched = set(delta.added_tables) | set(delta.changed_tables)
        key_bits = sum(
            node.key_bits
            for name, node in graph.nodes.items()
            if name in touched and not node.is_gateway
        )
        modeled = (
            self.cost_model.relink_seconds
            + self.cost_model.per_table_seconds * delta.touched
            + self.cost_model.per_key_bit_seconds * key_bits
        )
        if delta.parser_changed:
            modeled += self.cost_model.parser_rebuild_seconds
        report = IncrementalCompileReport(
            delta=delta,
            modeled_seconds=modeled,
            monolithic_seconds=monolithic_report.modeled_seconds,
            actual_seconds=time.perf_counter() - start,
            resources=monolithic_report.resources,
        )
        self.reports.append(report)
        return report
