"""RMT pipeline resource model (Tofino-2-like).

Concrete per-stage capacities for an RMT match-action pipeline.  The
numbers are of the published order of magnitude for Tofino 2 (20 stages,
~10 SRAM blocks and ~2 TCAM blocks' worth of match capacity per stage in
our simplified accounting); the experiments only depend on *relative*
resource consumption, per the reproduction's substitution policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FlayError, STAGE_LOWER


@dataclass(frozen=True)
class PipelineSpec:
    """Hardware envelope of one RMT pipeline."""

    name: str = "tofino2"
    num_stages: int = 20
    # Per-stage capacities.
    sram_bits_per_stage: int = 128 * 1024 * 8 * 10  # 10 blocks x 128 KiB
    tcam_bits_per_stage: int = 44 * 512 * 24  # 24 TCAM blocks of 512x44
    tables_per_stage: int = 8
    gateways_per_stage: int = 16
    alus_per_stage: int = 32
    # Whole-pipeline packet header vector budget (bits).
    phv_bits: int = 4096


TOFINO2 = PipelineSpec()
TOFINO1 = PipelineSpec(
    name="tofino1",
    num_stages=12,
    sram_bits_per_stage=128 * 1024 * 8 * 8,
    tcam_bits_per_stage=44 * 512 * 16,
    tables_per_stage=6,
    gateways_per_stage=12,
    alus_per_stage=24,
    phv_bits=3072,
)


@dataclass
class StageUsage:
    """Resources consumed in one physical stage."""

    index: int
    tables: list = field(default_factory=list)  # node names (incl. gateways)
    table_count: int = 0  # real match-action tables only
    sram_bits: int = 0
    tcam_bits: int = 0
    gateways: int = 0
    alus: int = 0

    def fits(self, spec: PipelineSpec, extra_sram: int, extra_tcam: int,
             extra_tables: int, extra_gateways: int, extra_alus: int) -> bool:
        return (
            self.table_count + extra_tables <= spec.tables_per_stage
            and self.sram_bits + extra_sram <= spec.sram_bits_per_stage
            and self.tcam_bits + extra_tcam <= spec.tcam_bits_per_stage
            and self.gateways + extra_gateways <= spec.gateways_per_stage
            and self.alus + extra_alus <= spec.alus_per_stage
        )


class ResourceError(FlayError, RuntimeError):
    """The program does not fit the pipeline."""

    default_stage = STAGE_LOWER


@dataclass
class ResourceReport:
    """Whole-program resource accounting produced by the allocator."""

    spec: PipelineSpec
    stages_used: int
    stage_usages: list
    total_sram_bits: int
    total_tcam_bits: int
    phv_bits_used: int
    total_tables: int
    total_gateways: int

    @property
    def at_capacity(self) -> bool:
        return self.stages_used >= self.spec.num_stages

    def describe(self) -> str:
        return (
            f"{self.spec.name}: {self.stages_used}/{self.spec.num_stages} stages, "
            f"{self.total_tables} tables, {self.total_gateways} gateways, "
            f"SRAM {self.total_sram_bits // 8 // 1024} KiB, "
            f"TCAM {self.total_tcam_bits // 8 // 1024} KiB, "
            f"PHV {self.phv_bits_used}/{self.spec.phv_bits} bits"
        )


def table_memory_bits(
    match_kind_bits_exact: int,
    match_kind_bits_ternary: int,
    match_kind_bits_lpm: int,
    entries: int,
    action_param_bits: int,
) -> tuple[int, int]:
    """(sram_bits, tcam_bits) for one table's match + action memories.

    Exact keys live in SRAM hash tables (~1.25x overhead for hashing),
    ternary and LPM keys occupy TCAM (value+mask, hence 2x), and action
    data always lives in SRAM.
    """
    entries = max(entries, 1)
    sram = int(match_kind_bits_exact * entries * 1.25)
    sram += action_param_bits * entries
    sram += entries * 8  # action-select / next-table pointers
    tcam = (match_kind_bits_ternary + match_kind_bits_lpm) * entries * 2
    return sram, tcam
