"""Unit tests for the abstract-interpretation framework.

Covers the lattice algebra, the interpreter's fact discipline
(decisions, folds, conflict clearing), the flow-sensitive effects
analysis, and the prune rewriter's gating.
"""

import pytest

from repro.analysis.dataflow import (
    AbstractInterpreter,
    Bool3,
    Effects,
    IntervalLattice,
    PruneReport,
    TaintLattice,
    action_effects,
    block_effects,
    dead_writes,
    fixpoint,
    prune_program,
    term_join,
)
from repro.analysis.dataflow import engine as engine_mod
from repro.analysis.dataflow.prune import EFFORT_DCE, EFFORT_FULL, EFFORT_NONE
from repro.analysis.symexec import TableInfo
from repro.p4 import ast_nodes as ast
from repro.p4.parser import parse_program
from repro.p4.printer import print_program
from repro.smt import terms as T
from repro.smt.interval import Interval


def make_program(apply_body, locals_src="", parser_body=None):
    parser_body = (
        parser_body
        or "    state start { pkt_extract(hdr.h); transition accept; }"
    )
    return parse_program(f"""
header h_t {{ bit<8> a; bit<8> b; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> m; bit<8> n; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
{parser_body}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals_src}
    apply {{
{apply_body}
    }}
}}
Pipeline(P(), C()) main;
""")


def apply_stmts(program):
    return program.find("C").apply.statements


class TestBool3:
    def test_join(self):
        assert Bool3.TRUE.join(Bool3.TRUE) is Bool3.TRUE
        assert Bool3.TRUE.join(Bool3.FALSE) is Bool3.UNKNOWN
        assert Bool3.UNKNOWN.join(Bool3.TRUE) is Bool3.UNKNOWN

    def test_negate(self):
        assert Bool3.TRUE.negate() is Bool3.FALSE
        assert Bool3.FALSE.negate() is Bool3.TRUE
        assert Bool3.UNKNOWN.negate() is Bool3.UNKNOWN

    def test_from_term(self):
        assert Bool3.from_term(T.TRUE) is Bool3.TRUE
        assert Bool3.from_term(T.FALSE) is Bool3.FALSE
        sym = T.data_var("x", 1)
        assert Bool3.from_term(T.eq(sym, T.bv_const(1, 1))) is Bool3.UNKNOWN


class TestIntervalLattice:
    def test_top(self):
        assert IntervalLattice.top(8) == Interval(0, 255)

    def test_join_is_hull(self):
        joined = IntervalLattice.join(Interval(1, 3), Interval(10, 12))
        assert joined == Interval(1, 12)

    def test_leq(self):
        assert IntervalLattice.leq(Interval(2, 3), Interval(0, 10))
        assert not IntervalLattice.leq(Interval(0, 11), Interval(0, 10))

    def test_of_term_constant(self):
        assert IntervalLattice.of_term(T.bv_const(7, 8)) == Interval(7, 7)


class TestTaintLattice:
    def test_join_union(self):
        a = frozenset({"x"})
        b = frozenset({"y"})
        assert TaintLattice.join(a, b) == frozenset({"x", "y"})
        assert TaintLattice.join(a, TaintLattice.BOTTOM) is a
        assert TaintLattice.join(TaintLattice.BOTTOM, b) is b

    def test_leq_is_inclusion(self):
        assert TaintLattice.leq(frozenset({"x"}), frozenset({"x", "y"}))
        assert not TaintLattice.leq(frozenset({"z"}), frozenset({"x"}))


class TestTermJoin:
    def test_identical_terms_stay(self):
        t = T.bv_const(3, 8)
        assert term_join(t, T.bv_const(3, 8), fresh=lambda _: T.TRUE) is t

    def test_differing_terms_go_fresh(self):
        opaque = T.data_var("fresh", 8)
        out = term_join(T.bv_const(1, 8), T.bv_const(2, 8), fresh=lambda _: opaque)
        assert out is opaque


class TestFixpoint:
    def test_converges_over_a_cycle(self):
        # Union-of-labels over a 3-node cycle with an off-ramp.
        graph = {"a": ["b"], "b": ["c"], "c": ["a", "d"], "d": []}
        facts = {n: frozenset() for n in graph}
        gen = {"a": frozenset({"A"}), "b": frozenset({"B"})}

        def join_into(node, fact):
            merged = facts[node] | fact
            if merged != facts[node]:
                facts[node] = merged
                return True
            return False

        fixpoint(
            successors=lambda n: graph[n],
            entry_facts={"a": frozenset({"seed"})},
            transfer=lambda n, f: f | gen.get(n, frozenset()),
            join_into=join_into,
            fact_at=lambda n: facts[n],
        )
        assert facts["d"] == frozenset({"seed", "A", "B"})
        # The cycle saturates: every member sees every label.
        assert facts["a"] == facts["b"] == facts["c"] == facts["d"]


class TestAbstractInterpreter:
    def test_selector_width_matches_symexec(self):
        # The engine mirrors the executor's table encoding; the widths
        # must never drift or prune decisions stop matching symexec.
        assert engine_mod._SELECTOR_WIDTH == TableInfo.SELECTOR_WIDTH

    def test_constant_condition_decision(self):
        program = make_program(
            """        meta.m = 8w1;
        if (meta.m == 8w1) { meta.n = 8w2; } else { meta.n = 8w3; }"""
        )
        interp = AbstractInterpreter(program)
        interp.run()
        if_stmt = apply_stmts(program)[1]
        assert interp.decisions[id(if_stmt)] is True

    def test_symbolic_condition_has_no_decision(self):
        program = make_program(
            "        if (hdr.h.a == 8w1) { meta.n = 8w2; }"
        )
        interp = AbstractInterpreter(program)
        interp.run()
        if_stmt = apply_stmts(program)[0]
        assert id(if_stmt) not in interp.decisions

    def test_conflicting_reexecution_clears_the_decision(self):
        # The action runs once per table fork with different parameter
        # bindings; a fact that differs across executions must die.
        program = make_program(
            "        t.apply();\n        t.apply();"
            if False
            else "        helper(8w1);\n        helper(8w2);",
            locals_src="""
    action helper(bit<8> v) {
        meta.m = v;
        if (meta.m == 8w1) { meta.n = 8w2; }
    }
""",
        )
        interp = AbstractInterpreter(program)
        interp.run()
        helper = program.find("C").locals[0]
        if_stmt = helper.body.statements[1]
        assert id(if_stmt) not in interp.decisions

    def test_fold_fact_for_constant_store(self):
        program = make_program(
            """        meta.m = 8w1;
        meta.n = meta.m + 8w1;"""
        )
        interp = AbstractInterpreter(program)
        interp.run()
        assign = apply_stmts(program)[1]
        fact = interp.folds[id(assign)]
        assert (fact.value, fact.width) == (2, 8)

    def test_applied_tables_are_recorded(self):
        program = make_program(
            "        t.apply();",
            locals_src="""
    action noop() { }
    table t {
        key = { hdr.h.a: exact; }
        actions = { noop; }
        default_action = noop();
    }
""",
        )
        interp = AbstractInterpreter(program)
        interp.run()
        assert "C.t" in interp.applied_tables


class TestEffects:
    def make_action(self, body, params="bit<8> v"):
        program = make_program(
            "        helper(8w1);",
            locals_src=f"""
    action helper({params}) {{
{body}
    }}
""",
        )
        return program.find("C").locals[0]

    def test_kill_hides_read_after_must_write(self):
        action = self.make_action(
            """        meta.m = v;
        meta.n = meta.m;"""
        )
        effects = action_effects(action)
        assert "meta.m" not in effects.reads  # locally defined before use
        assert {"meta.m", "meta.n"} <= set(effects.must_writes)

    def test_read_before_write_escapes(self):
        action = self.make_action(
            """        meta.n = meta.m;
        meta.m = v;"""
        )
        effects = action_effects(action)
        assert "meta.m" in effects.reads

    def test_branch_merge_must_is_intersection(self):
        action = self.make_action(
            """        if (v == 8w1) { meta.m = 8w1; meta.n = 8w1; }
        else { meta.m = 8w2; }"""
        )
        effects = action_effects(action)
        assert "meta.m" in effects.must_writes
        assert "meta.n" not in effects.must_writes
        assert "meta.n" in effects.writes  # still a may-write

    def test_dst_write_extern_writes_first_arg(self):
        program = make_program(
            "        helper();",
            locals_src="""
    register<bit<8>>(16) reg;
    action helper() {
        reg.read(meta.m, 8w0);
    }
""",
        )
        action = next(
            local
            for local in program.find("C").locals
            if isinstance(local, ast.ActionDecl)
        )
        effects = action_effects(action)
        assert "meta.m" in effects.writes
        assert "meta.m" not in effects.reads

    def test_dead_write_straight_line(self):
        action = self.make_action(
            """        meta.m = 8w1;
        meta.m = v;"""
        )
        dead = dead_writes(action.body, frozenset({"v"}))
        assert [d.path for d in dead] == ["meta.m"]

    def test_branch_is_a_barrier(self):
        action = self.make_action(
            """        meta.m = 8w1;
        if (v == 8w0) { meta.n = 8w1; }
        meta.m = v;"""
        )
        assert dead_writes(action.body, frozenset({"v"})) == []


class TestPrune:
    def test_removes_always_true_branch(self):
        program = make_program(
            """        meta.m = 8w1;
        if (meta.m == 8w1) { meta.n = 8w2; } else { meta.n = 8w3; }"""
        )
        pruned, report = prune_program(program)
        assert report.removed_branches == 1
        body = pruned.find("C").apply.statements
        # The if is gone; its live branch is spliced in.
        assert not any(isinstance(s, ast.IfStmt) for s in body)
        assert "meta.n = 8w2" in print_program(pruned)
        assert "8w3" not in print_program(pruned)

    def test_removes_always_false_branch_without_else(self):
        program = make_program(
            """        meta.m = 8w1;
        if (meta.m == 8w9) { meta.n = 8w2; }"""
        )
        pruned, report = prune_program(program)
        assert report.removed_branches == 1
        assert "meta.n" not in print_program(pruned)

    def test_folds_constants_at_full_effort(self):
        program = make_program(
            """        meta.m = 8w1;
        meta.n = meta.m + 8w1;"""
        )
        pruned, report = prune_program(program, effort=EFFORT_FULL)
        assert report.folded_constants >= 1
        assert "meta.n = 8w2" in print_program(pruned)

    def test_dce_effort_skips_folding(self):
        program = make_program(
            """        meta.m = 8w1;
        meta.n = meta.m + 8w1;"""
        )
        pruned, report = prune_program(program, effort=EFFORT_DCE)
        assert report.folded_constants == 0
        assert "meta.m + 8w1" in print_program(pruned)

    def test_none_effort_is_identity(self):
        program = make_program("        meta.m = 8w1;")
        pruned, report = prune_program(program, effort=EFFORT_NONE)
        assert pruned is program
        assert not report.enabled
        assert report.summary() == "prune: disabled"

    def test_analysis_failure_degrades_to_identity(self):
        # No pipeline instantiation: the interpreter cannot run.
        program = parse_program("""
header h_t { bit<8> a; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
control C(inout headers_t hdr, inout meta_t meta) {
    apply { meta.m = 8w1; }
}
""")
        pruned, report = prune_program(program)
        assert pruned is program
        assert report.analysis_failed
        assert not report.changed
        assert "skipped" in report.summary()

    def test_untouched_program_returns_same_object(self):
        program = make_program(
            "        if (hdr.h.a == 8w1) { meta.n = 8w2; }"
        )
        pruned, report = prune_program(program)
        assert pruned is program
        assert not report.changed

    def test_action_bodies_are_never_rewritten(self):
        # Folding inside actions would break parameter-dependent reuse;
        # the rewriter only touches apply-block trees.
        program = make_program(
            "        helper();",
            locals_src="""
    action helper() {
        meta.m = 8w1;
        if (meta.m == 8w1) { meta.n = 8w2; } else { meta.n = 8w3; }
    }
""",
        )
        pruned, _report = prune_program(program)
        helper = pruned.find("C").locals[0]
        assert any(
            isinstance(s, ast.IfStmt) for s in helper.body.statements
        )

    def test_report_summary_counts(self):
        report = PruneReport(removed_branches=2, folded_constants=1)
        assert report.changed
        assert report.summary() == "prune: 2 branches removed, 1 constants folded"
