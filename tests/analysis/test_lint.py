"""Seeded-diagnostic tests for ``repro.analysis.lint``.

Each diagnostic class gets a program with the defect planted at a known
location; the tests assert the code, severity, and the *exact* source
position (computed from the seeded source, so reformatting the fixture
keeps them honest).
"""

import pytest

from repro.analysis import lint as L
from repro.errors import SourcePos
from repro.p4.parser import parse_program


def lint_src(source, **kwargs):
    return L.lint_program(parse_program(source), **kwargs)


def by_code(report, code):
    return [d for d in report.diagnostics if d.code == code]


def pos_of(source, marker, token=None):
    """The 1-based position of ``token`` on the line containing ``marker``."""
    for lineno, line in enumerate(source.splitlines(), 1):
        if marker in line:
            needle = token if token is not None else marker
            return SourcePos(lineno, line.index(needle) + 1)
    raise AssertionError(f"marker {marker!r} not in source")


PREAMBLE = """
header h_t { bit<8> a; bit<8> b; }
header u_t { bit<8> x; }
struct headers_t { h_t h; u_t u; }
struct meta_t { bit<8> m; bit<8> n; bit<16> w; }
"""


def program(parser_body, control_locals, apply_body):
    return f"""{PREAMBLE}
parser P(inout headers_t hdr, inout meta_t meta) {{
{parser_body}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{control_locals}
    apply {{
{apply_body}
    }}
}}
Pipeline(P(), C()) main;
"""


EXTRACT_H = "    state start { pkt_extract(hdr.h); transition accept; }"


class TestCleanProgram:
    def test_no_findings(self):
        source = program(
            EXTRACT_H,
            """
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.a: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
""",
            "        t.apply();\n        hdr.h.b = meta.m;",
        )
        report = lint_src(source)
        assert report.diagnostics == []
        assert report.max_severity() is None
        assert report.summary() == "no findings"


class TestUninitializedHeaderRead:
    def test_read_of_never_extracted_header(self):
        source = program(EXTRACT_H, "", "        meta.m = hdr.u.x;")
        report = lint_src(source)
        (diag,) = by_code(report, L.UNINITIALIZED_HEADER_READ)
        assert diag.severity == L.SEVERITY_ERROR
        assert "hdr.u" in diag.message and "'hdr.u.x'" in diag.message
        assert diag.pos == pos_of(source, "meta.m = hdr.u.x;", "meta.m")

    def test_extracted_header_read_is_clean(self):
        source = program(EXTRACT_H, "", "        meta.m = hdr.h.a;")
        assert by_code(lint_src(source), L.UNINITIALIZED_HEADER_READ) == []

    def test_isvalid_guard_suppresses_the_read(self):
        # The guarded read never executes; the guard itself is reported
        # as an always-false branch instead.
        source = program(
            EXTRACT_H,
            "",
            "        if (hdr.u.isValid()) { meta.m = hdr.u.x; }",
        )
        report = lint_src(source)
        assert by_code(report, L.UNINITIALIZED_HEADER_READ) == []

    def test_conditionally_extracted_header_is_clean(self):
        parser_body = """
    state start {
        pkt_extract(hdr.h);
        transition select(hdr.h.a) {
            8w0: u;
            default: accept;
        }
    }
    state u { pkt_extract(hdr.u); transition accept; }
"""
        source = program(parser_body, "", "        meta.m = hdr.u.x;")
        assert by_code(lint_src(source), L.UNINITIALIZED_HEADER_READ) == []

    def test_skip_parser_assumes_validity(self):
        source = program(EXTRACT_H, "", "        meta.m = hdr.u.x;")
        report = lint_src(source, skip_parser=True)
        assert by_code(report, L.UNINITIALIZED_HEADER_READ) == []


class TestUnreachableBranch:
    def test_constant_true_condition(self):
        source = program(
            EXTRACT_H,
            "",
            """        meta.m = 8w1;
        if (meta.m == 8w1) { meta.n = 8w2; } else { meta.n = 8w3; }""",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.UNREACHABLE_BRANCH)
        assert diag.severity == L.SEVERITY_WARNING
        assert "always true" in diag.message
        assert diag.pos == pos_of(source, "if (meta.m == 8w1)", "if")

    def test_constant_false_condition(self):
        source = program(
            EXTRACT_H,
            "",
            """        meta.m = 8w1;
        if (meta.m == 8w2) { meta.n = 8w2; }""",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.UNREACHABLE_BRANCH)
        assert "always false" in diag.message
        assert diag.pos == pos_of(source, "if (meta.m == 8w2)", "if")

    def test_true_without_else_is_silent(self):
        # Foldable, but nothing is unreachable.
        source = program(
            EXTRACT_H, "", "        if (true) { meta.m = 8w1; }"
        )
        assert by_code(lint_src(source), L.UNREACHABLE_BRANCH) == []

    def test_data_dependent_condition_is_silent(self):
        source = program(
            EXTRACT_H,
            "",
            "        if (hdr.h.a == 8w1) { meta.n = 8w2; } else { meta.n = 8w3; }",
        )
        assert by_code(lint_src(source), L.UNREACHABLE_BRANCH) == []


class TestShadowedSelectCase:
    def test_case_after_catch_all_default(self):
        parser_body = """
    state start {
        pkt_extract(hdr.h);
        transition select(hdr.h.a) {
            8w0: s0;
            default: accept;
            8w1: s0;
        }
    }
    state s0 { transition accept; }
"""
        source = program(parser_body, "", "        meta.m = 8w0;")
        report = lint_src(source)
        (diag,) = by_code(report, L.SHADOWED_SELECT_CASE)
        assert diag.severity == L.SEVERITY_WARNING
        assert "catch-all" in diag.message
        assert diag.pos == pos_of(source, "8w1: s0;", "8w1")

    def test_duplicate_keyset(self):
        parser_body = """
    state start {
        pkt_extract(hdr.h);
        transition select(hdr.h.a) {
            8w0: s0;
            8w0: accept;
            default: accept;
        }
    }
    state s0 { transition accept; }
"""
        source = program(parser_body, "", "        meta.m = 8w0;")
        report = lint_src(source)
        (diag,) = by_code(report, L.SHADOWED_SELECT_CASE)
        assert "repeats" in diag.message
        assert diag.pos == pos_of(source, "8w0: accept;", "8w0")

    def test_distinct_cases_are_clean(self):
        parser_body = """
    state start {
        pkt_extract(hdr.h);
        transition select(hdr.h.a) {
            8w0: s0;
            8w1: s0;
            default: accept;
        }
    }
    state s0 { transition accept; }
"""
        source = program(parser_body, "", "        meta.m = 8w0;")
        assert by_code(lint_src(source), L.SHADOWED_SELECT_CASE) == []


SWITCH_LOCALS = """
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.a: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
"""


class TestSwitchCases:
    def test_duplicate_arm_is_shadowed(self):
        source = program(
            EXTRACT_H,
            SWITCH_LOCALS,
            """        switch (t.apply().action_run) {
            set: { meta.n = 8w1; }
            set: { meta.n = 8w2; }
            default: { }
        }""",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.SHADOWED_SWITCH_CASE)
        assert diag.severity == L.SEVERITY_WARNING
        assert diag.pos == pos_of(source, "set: { meta.n = 8w2; }", "set")

    def test_unknown_action_arm_is_unreachable(self):
        source = program(
            EXTRACT_H,
            SWITCH_LOCALS,
            """        switch (t.apply().action_run) {
            set: { meta.n = 8w1; }
            missing: { meta.n = 8w2; }
            default: { }
        }""",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.UNREACHABLE_SWITCH_CASE)
        assert "'missing'" in diag.message and "'t'" in diag.message
        assert diag.pos == pos_of(source, "missing: {", "missing")

    def test_well_formed_switch_is_clean(self):
        source = program(
            EXTRACT_H,
            SWITCH_LOCALS,
            """        switch (t.apply().action_run) {
            set: { meta.n = 8w1; }
            noop: { meta.n = 8w2; }
            default: { }
        }""",
        )
        report = lint_src(source)
        assert by_code(report, L.SHADOWED_SWITCH_CASE) == []
        assert by_code(report, L.UNREACHABLE_SWITCH_CASE) == []


class TestWidthTruncation:
    def test_oversized_sized_literal(self):
        source = program(EXTRACT_H, "", "        meta.m = 16w300;")
        report = lint_src(source)
        (diag,) = by_code(report, L.WIDTH_TRUNCATION)
        assert diag.severity == L.SEVERITY_WARNING
        assert "16-bit literal" in diag.message
        assert diag.pos == pos_of(source, "meta.m = 16w300;", "meta.m")

    def test_unsized_literal_that_does_not_fit(self):
        source = program(EXTRACT_H, "", "        meta.m = 300;")
        report = lint_src(source)
        (diag,) = by_code(report, L.WIDTH_TRUNCATION)
        assert "does not fit" in diag.message
        assert diag.pos == pos_of(source, "meta.m = 300;", "meta.m")

    def test_wide_field_into_narrow_field(self):
        source = program(EXTRACT_H, "", "        meta.m = meta.w;")
        report = lint_src(source)
        (diag,) = by_code(report, L.WIDTH_TRUNCATION)
        assert "16-bit value" in diag.message
        assert diag.pos == pos_of(source, "meta.m = meta.w;", "meta.m")

    def test_explicit_cast_is_intentional(self):
        source = program(EXTRACT_H, "", "        meta.m = (bit<8>) meta.w;")
        assert by_code(lint_src(source), L.WIDTH_TRUNCATION) == []

    def test_widening_is_clean(self):
        source = program(EXTRACT_H, "", "        meta.w = 16w3;")
        assert by_code(lint_src(source), L.WIDTH_TRUNCATION) == []

    def test_truncation_inside_action(self):
        source = program(
            EXTRACT_H,
            """
    action bad() { meta.m = meta.w; }
    table t {
        key = { hdr.h.a: exact; }
        actions = { bad; }
        default_action = bad();
    }
""",
            "        t.apply();",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.WIDTH_TRUNCATION)
        assert diag.unit == "C.bad"


class TestDeadAction:
    def test_unreferenced_action(self):
        source = program(
            EXTRACT_H,
            """
    action used() { meta.m = 8w1; }
    action orphan() { meta.m = 8w2; }
    table t {
        key = { hdr.h.a: exact; }
        actions = { used; }
        default_action = used();
    }
""",
            "        t.apply();",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.DEAD_ACTION)
        assert diag.severity == L.SEVERITY_INFO
        assert "'orphan'" in diag.message
        assert diag.pos == pos_of(source, "action orphan()", "orphan")

    def test_directly_called_action_is_live(self):
        source = program(
            EXTRACT_H,
            "    action helper() { meta.m = 8w1; }",
            "        helper();",
        )
        assert by_code(lint_src(source), L.DEAD_ACTION) == []

    def test_action_called_from_live_action_is_live(self):
        source = program(
            EXTRACT_H,
            """
    action inner() { meta.n = 8w2; }
    action outer() { inner(); }
""",
            "        outer();",
        )
        assert by_code(lint_src(source), L.DEAD_ACTION) == []


class TestWriteAfterWrite:
    def test_straight_line_overwrite(self):
        source = program(
            EXTRACT_H,
            "",
            """        meta.m = 8w1;
        meta.m = 8w2;""",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.WRITE_AFTER_WRITE)
        assert diag.severity == L.SEVERITY_WARNING
        assert "'meta.m'" in diag.message
        assert diag.pos == pos_of(source, "meta.m = 8w2;", "meta.m")
        first = pos_of(source, "meta.m = 8w1;", "meta.m")
        assert str(first) in diag.message

    def test_intervening_read_clears(self):
        source = program(
            EXTRACT_H,
            "",
            """        meta.m = 8w1;
        meta.n = meta.m;
        meta.m = 8w2;""",
        )
        assert by_code(lint_src(source), L.WRITE_AFTER_WRITE) == []

    def test_overwrite_inside_action(self):
        source = program(
            EXTRACT_H,
            """
    action a() {
        meta.n = 8w1;
        meta.n = 8w2;
    }
""",
            "        a();",
        )
        report = lint_src(source)
        (diag,) = by_code(report, L.WRITE_AFTER_WRITE)
        assert diag.unit == "C.a"
        assert diag.pos == pos_of(source, "meta.n = 8w2;", "meta.n")


class TestReportApi:
    def _report(self):
        source = program(
            EXTRACT_H,
            "    action orphan() { meta.n = 8w9; }",
            """        meta.m = hdr.u.x;
        meta.m = 16w300;""",
        )
        return lint_src(source)

    def test_severity_mix_and_ordering(self):
        report = self._report()
        codes = [d.code for d in report.diagnostics]
        assert L.UNINITIALIZED_HEADER_READ in codes
        assert L.WIDTH_TRUNCATION in codes
        assert L.DEAD_ACTION in codes
        # Source order: positions are non-decreasing.
        positions = [d.pos for d in report.diagnostics if d.pos is not None]
        assert positions == sorted(positions, key=lambda p: (p.line, p.column))

    def test_max_severity_and_filters(self):
        report = self._report()
        assert report.max_severity() == L.SEVERITY_ERROR
        errors = report.at_least(L.SEVERITY_ERROR)
        assert all(d.severity == L.SEVERITY_ERROR for d in errors)
        assert len(report.at_least(L.SEVERITY_INFO)) == len(report.diagnostics)
        counts = report.counts()
        assert counts[L.SEVERITY_ERROR] >= 1
        assert counts[L.SEVERITY_INFO] >= 1

    def test_render_format(self):
        report = self._report()
        diag = report.at_least(L.SEVERITY_ERROR)[0]
        rendered = diag.render()
        assert rendered.startswith(f"{diag.pos}: error: [{diag.code}]")

    def test_write_after_write_also_flagged(self):
        # meta.m is assigned twice with no intervening read.
        report = self._report()
        assert by_code(report, L.WRITE_AFTER_WRITE)


class TestCorpus:
    def test_lint_runs_on_every_corpus_program(self):
        from repro.programs import registry

        for name in registry.CORPUS:
            report = L.lint_program(registry.load(name))
            assert report.max_severity() in (
                None,
                L.SEVERITY_INFO,
                L.SEVERITY_WARNING,
            ), f"{name}: {[d.render() for d in report.at_least('error')]}"
