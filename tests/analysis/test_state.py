"""Tests for the symbolic store and state merging."""

from repro.analysis.state import SymbolicStore, merge_stores
from repro.smt import terms as T


def c(v, w=8):
    return T.bv_const(v, w)


class TestStore:
    def test_read_write(self):
        store = SymbolicStore()
        store.write("a.b", c(1))
        assert store.read("a.b") is c(1)

    def test_missing_read_raises(self):
        import pytest

        with pytest.raises(KeyError):
            SymbolicStore().read("nope")

    def test_fork_isolated(self):
        store = SymbolicStore()
        store.write("x", c(1))
        fork = store.fork()
        fork.write("x", c(2))
        assert store.read("x") is c(1)
        assert fork.read("x") is c(2)

    def test_snapshot_detached(self):
        store = SymbolicStore()
        store.write("x", c(1))
        snap = store.snapshot()
        store.write("x", c(2))
        assert snap["x"] is c(1)


class TestMerge:
    def test_identical_values_untouched(self):
        a = SymbolicStore({"x": c(1)})
        b = SymbolicStore({"x": c(1)})
        merged = merge_stores(T.bool_var("m"), a, b)
        assert merged.read("x") is c(1)

    def test_differing_values_become_ite(self):
        cond = T.eq(T.data_var("mg", 8), c(0))
        a = SymbolicStore({"x": c(1)})
        b = SymbolicStore({"x": c(2)})
        merged = merge_stores(cond, a, b)
        value = merged.read("x")
        assert T.evaluate(value, {"mg": 0}) == 1
        assert T.evaluate(value, {"mg": 5}) == 2

    def test_constant_condition_folds(self):
        a = SymbolicStore({"x": c(1)})
        b = SymbolicStore({"x": c(2)})
        assert merge_stores(T.TRUE, a, b).read("x") is c(1)
        assert merge_stores(T.FALSE, a, b).read("x") is c(2)

    def test_one_sided_paths_kept(self):
        cond = T.bool_var("mo")
        a = SymbolicStore({"x": c(1), "only_a": c(9)})
        b = SymbolicStore({"x": c(1), "only_b": c(8)})
        merged = merge_stores(cond, a, b)
        assert merged.read("only_a") is c(9)
        assert merged.read("only_b") is c(8)
