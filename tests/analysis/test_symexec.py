"""Tests for the state-merging symbolic executor."""

import pytest

from repro.analysis import (
    DROP_PATH,
    KIND_ACTION_VALUE,
    KIND_ASSIGN,
    KIND_IF,
    KIND_SELECT,
    VALID_SUFFIX,
    AnalysisError,
    analyze,
)
from repro.p4.parser import parse_program
from repro.programs.fig5 import FIG5_SOURCE
from repro.smt import evaluate, simplify, substitute, terms as T, to_string


def _program(body: str, locals_: str = "", meta_fields: str = "bit<8> m;") -> str:
    return f"""
header h_t {{ bit<8> f; bit<8> g; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ {meta_fields} }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ pkt_extract(hdr.h); transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals_}
    apply {{ {body} }}
}}
Pipeline(P(), C()) main;
"""


def analyze_src(source):
    return analyze(parse_program(source))


class TestBasics:
    def test_fig5_annotation_shape(self):
        """The value of egress_port after the table matches Fig. 5a line 11."""
        model = analyze_src(FIG5_SOURCE)
        final = model.final_store["meta.egress_port"]
        rendered = to_string(final)
        assert "|Fig5Ingress.port_table.action|" in rendered
        assert "|Fig5Ingress.port_table.set.port_var|" in rendered

    def test_metadata_zero_initialized(self):
        model = analyze_src(_program(""))
        assert model.final_store["meta.m"] is T.bv_const(0, 8)

    def test_header_fields_are_data_vars(self):
        model = analyze_src(_program(""))
        assert model.final_store["hdr.h.f"].is_data_var

    def test_intrinsic_metadata_is_data_var(self):
        source = _program("").replace(
            "parser P(inout headers_t hdr, inout meta_t meta)",
            "parser P(inout headers_t hdr, inout meta_t meta, inout intr_t intr)",
        ).replace(
            "control C(inout headers_t hdr, inout meta_t meta)",
            "control C(inout headers_t hdr, inout meta_t meta, inout intr_t intr)",
        ).replace(
            "struct meta_t", "struct intr_t { bit<9> port; }\nstruct meta_t"
        )
        model = analyze_src(source)
        assert model.final_store["intr.port"].is_data_var

    def test_extracted_header_valid(self):
        model = analyze_src(_program(""))
        assert model.final_store["hdr.h" + VALID_SUFFIX] is T.TRUE
        assert model.extracted_headers == ["hdr.h"]

    def test_assignment_point_recorded(self):
        model = analyze_src(_program("meta.m = hdr.h.f;"))
        assigns = [p for p in model.points.values() if p.kind == KIND_ASSIGN]
        assert len(assigns) == 1
        assert assigns[0].expr.is_data_var


class TestControlFlow:
    def test_if_merges_with_ite(self):
        model = analyze_src(
            _program("if (hdr.h.f == 0) { meta.m = 1; } else { meta.m = 2; }")
        )
        final = model.final_store["meta.m"]
        assert evaluate(final, {"hdr.h.f": 0}) == 1
        assert evaluate(final, {"hdr.h.f": 7}) == 2

    def test_if_point_recorded(self):
        model = analyze_src(_program("if (hdr.h.f == 0) { meta.m = 1; }"))
        ifs = [p for p in model.points.values() if p.kind == KIND_IF]
        assert len(ifs) == 1

    def test_constant_condition_pruned_during_analysis(self):
        model = analyze_src(_program("if (meta.m == 0) { meta.m = 1; }"))
        # meta.m is 0 initially: the executor takes the then branch directly.
        assert model.final_store["meta.m"] is T.bv_const(1, 8)

    def test_exit_stops_subsequent_writes(self):
        body = """
        if (hdr.h.f == 0) { exit; }
        meta.m = 5;
        """
        model = analyze_src(_program(body))
        final = model.final_store["meta.m"]
        assert evaluate(final, {"hdr.h.f": 0}) == 0  # exited before write
        assert evaluate(final, {"hdr.h.f": 1}) == 5

    def test_slice_assignment(self):
        model = analyze_src(_program("meta.m[3:0] = hdr.h.f[7:4];"))
        final = model.final_store["meta.m"]
        assert evaluate(final, {"hdr.h.f": 0xA5}) == 0x0A

    def test_local_variables(self):
        body = "bit<8> tmp = hdr.h.f; meta.m = tmp + 1;"
        model = analyze_src(_program(body))
        assert evaluate(model.final_store["meta.m"], {"hdr.h.f": 7}) == 8

    def test_direct_action_call(self):
        locals_ = "action bump(bit<8> v) { meta.m = meta.m + v; }"
        model = analyze_src(_program("bump(8w3);", locals_))
        assert model.final_store["meta.m"] is T.bv_const(3, 8)

    def test_mark_to_drop(self):
        model = analyze_src(_program("mark_to_drop();"))
        assert model.final_store[DROP_PATH] is T.TRUE

    def test_register_read_is_unconstrained(self):
        locals_ = "register<bit<8>>(4) reg;"
        model = analyze_src(_program("reg.read(meta.m, 8w0);", locals_))
        assert model.final_store["meta.m"].is_data_var


TABLE_LOCALS = """
    action set(bit<8> v) { meta.m = v; }
    action drop_it() { mark_to_drop(); }
    action noop() { }
    table t {
        key = { hdr.h.f: exact; }
        actions = { set; drop_it; noop; }
        default_action = noop();
        size = 16;
    }
"""


class TestTables:
    def test_table_info_recorded(self):
        model = analyze_src(_program("t.apply();", TABLE_LOCALS))
        info = model.table("t")
        assert info.name == "C.t"
        assert info.action_codes == {"set": 0, "drop_it": 1, "noop": 2}
        assert info.default_action == "noop"
        assert [k.match_kind for k in info.keys] == ["exact"]
        assert info.keys[0].term.is_data_var

    def test_selector_guards_effects(self):
        model = analyze_src(_program("t.apply();", TABLE_LOCALS))
        info = model.table("t")
        final = model.final_store["meta.m"]
        # Substituting selector = set-code makes meta.m the param var.
        chosen = substitute(
            final, {info.selector_var: T.bv_const(0, 8)}
        )
        assert chosen is info.action_params["set"][0].var

    def test_taint_maps_control_vars_to_points(self):
        model = analyze_src(_program("t.apply(); meta.m = meta.m + 1;", TABLE_LOCALS))
        sel_name = model.table("t").selector_var.name
        tainted = model.points_for_control_vars([sel_name])
        assert tainted  # downstream assignment sees the selector

    def test_double_apply_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_src(_program("t.apply(); t.apply();", TABLE_LOCALS))

    def test_hit_condition(self):
        body = "if (t.apply().hit) { meta.m = 1; } else { meta.m = 2; }"
        model = analyze_src(_program(body, TABLE_LOCALS))
        info = model.table("t")
        final = model.final_store["meta.m"]
        on_hit = simplify(substitute(final, {
            info.hit_var: T.bv_const(1, 1),
            info.selector_var: T.bv_const(2, 8),
        }))
        assert on_hit is T.bv_const(1, 8)

    def test_switch_statement(self):
        body = """
        switch (t.apply().action_run) {
            set: { meta.m = 10; }
            drop_it: { meta.m = 20; }
            default: { meta.m = 30; }
        }
        """
        model = analyze_src(_program(body, TABLE_LOCALS))
        info = model.table("t")
        final = model.final_store["meta.m"]
        for code, expected in ((0, 10), (1, 20), (2, 30)):
            value = simplify(substitute(final, {
                info.selector_var: T.bv_const(code, 8),
                info.action_params["set"][0].var: T.bv_const(0, 8),
            }))
            assert value is T.bv_const(expected, 8)

    def test_default_action_args_captured(self):
        locals_ = TABLE_LOCALS.replace("default_action = noop();", "default_action = set(8w7);")
        model = analyze_src(_program("t.apply();", locals_))
        info = model.table("t")
        assert info.default_args == (7,)


class TestParser:
    SELECT_SOURCE = """
header a_t { bit<8> tag; }
header b_t { bit<8> x; }
struct headers_t { a_t a; b_t b; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start {
        pkt_extract(hdr.a);
        transition select(hdr.a.tag) {
            1: parse_b;
            default: accept;
        }
    }
    state parse_b {
        pkt_extract(hdr.b);
        transition accept;
    }
}
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
Pipeline(P(), C()) main;
"""

    def test_conditional_validity(self):
        model = analyze(parse_program(self.SELECT_SOURCE))
        validity = model.final_store["hdr.b" + VALID_SUFFIX]
        assert evaluate(validity, {"hdr.a.tag": 1}) == 1
        assert evaluate(validity, {"hdr.a.tag": 2}) == 0

    def test_select_points_recorded(self):
        model = analyze(parse_program(self.SELECT_SOURCE))
        selects = [p for p in model.points.values() if p.kind == KIND_SELECT]
        assert len(selects) == 2  # every case gets a guard point
        by_target = {p.context: p for p in selects}
        assert "select -> parse_b" in by_target

    def test_extraction_order(self):
        model = analyze(parse_program(self.SELECT_SOURCE))
        assert model.extracted_headers == ["hdr.a", "hdr.b"]

    def test_no_matching_case_rejects(self):
        source = self.SELECT_SOURCE.replace("default: accept;", "2: parse_b;")
        model = analyze(parse_program(source))
        drop = model.final_store[DROP_PATH]
        assert evaluate(drop, {"hdr.a.tag": 9}) == 1
        assert evaluate(drop, {"hdr.a.tag": 1}) == 0

    def test_skip_parser_mode(self):
        model = analyze(parse_program(self.SELECT_SOURCE), skip_parser=True)
        assert model.skipped_parser
        validity = model.final_store["hdr.b" + VALID_SUFFIX]
        # Validity is a free (data-plane) condition, not computed from tags.
        assert not T.control_variables(validity)
        assert model.extracted_headers == ["hdr.a", "hdr.b"]

    def test_value_set_symbols(self):
        source = self.SELECT_SOURCE.replace(
            "parser P(inout headers_t hdr, inout meta_t meta) {",
            "parser P(inout headers_t hdr, inout meta_t meta) {\n"
            "    value_set<bit<8>>(2) pvs;",
        ).replace("1: parse_b;", "pvs: parse_b;")
        model = analyze(parse_program(source))
        vs = model.value_set("pvs")
        assert vs.size == 2
        validity = model.final_store["hdr.b" + VALID_SUFFIX]
        names = {v.name for v in T.control_variables(validity)}
        assert f"{vs.name}.valid0" in names
