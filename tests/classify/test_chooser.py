"""Tests for configuration-driven classifier selection."""

from repro.classify import ClassifierChooser, Rule, RulePattern

W = 16
FULL = (1 << W) - 1


def prefix_rule(value, length, action="a"):
    mask = ((1 << length) - 1) << (W - length) if length else 0
    return Rule(value & mask, mask, priority=length, action=action)


class TestChoice:
    def test_exact_rules_pick_exact_table(self):
        chooser = ClassifierChooser(W)
        rules = [Rule(i, FULL, 1, "a") for i in range(50)]
        chosen, report = chooser.choose(rules)
        assert chosen.name == "exact"
        assert report.savings_vs_tcam() > 0.5

    def test_prefix_rules_avoid_tcam(self):
        chooser = ClassifierChooser(W)
        rules = [prefix_rule(i << 8, 8) for i in range(50)]
        chosen, report = chooser.choose(rules)
        assert chosen.name in ("lpm-trie", "stcam")
        assert report.alternatives["tcam"] > report.footprint_bits

    def test_arbitrary_masks_force_tcam(self):
        chooser = ClassifierChooser(W, stcam_max_masks=4)
        rules = [Rule(i, (i * 2654435761) & FULL or 1, i + 1, "a") for i in range(40)]
        chosen, report = chooser.choose(rules)
        assert report.alternatives["exact"] is None
        assert report.alternatives["lpm-trie"] is None
        assert chosen.name == "tcam"

    def test_chosen_structure_still_classifies(self):
        chooser = ClassifierChooser(W)
        rules = [Rule(7, FULL, 1, "seven")]
        chosen, _ = chooser.choose(rules)
        assert chosen.lookup(7).action == "seven"


class TestPattern:
    def test_pattern_of(self):
        rules = [Rule(1, FULL, 1, "a"), Rule(2, FULL, 1, "a")]
        pattern = RulePattern.of(rules, W)
        assert pattern.all_exact and pattern.all_prefix
        assert pattern.distinct_masks == 1
        assert pattern.rule_count == 2

    def test_pattern_changed_on_new_mask(self):
        chooser = ClassifierChooser(W)
        before = RulePattern.of([Rule(1, FULL, 1, "a")], W)
        after = RulePattern.of(
            [Rule(1, FULL, 1, "a"), Rule(0, 0xFF00, 2, "a")], W
        )
        assert chooser.pattern_changed(before, after)

    def test_pattern_unchanged_on_growth(self):
        chooser = ClassifierChooser(W)
        before = RulePattern.of([Rule(1, FULL, 1, "a")], W)
        after = RulePattern.of([Rule(1, FULL, 1, "a"), Rule(2, FULL, 1, "a")], W)
        assert not chooser.pattern_changed(before, after)
