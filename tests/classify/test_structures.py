"""Tests for the packet-classification data structures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.classify import (
    ClassifierError,
    ExactClassifier,
    LpmTrieClassifier,
    Rule,
    StcamClassifier,
    TcamClassifier,
)

W = 16
FULL = (1 << W) - 1


def prefix_rule(value, length, action="a"):
    mask = ((1 << length) - 1) << (W - length) if length else 0
    return Rule(value & mask, mask, priority=length, action=action)


class TestTcam:
    def test_priority_order(self):
        tcam = TcamClassifier(W)
        tcam.install([
            Rule(0x1200, 0xFF00, 1, "low"),
            Rule(0x1234, FULL, 10, "high"),
        ])
        assert tcam.lookup(0x1234).action == "high"
        assert tcam.lookup(0x1299).action == "low"
        assert tcam.lookup(0x9999) is None

    def test_footprint_scales(self):
        small = TcamClassifier(W)
        small.install([Rule(i, FULL, i, "a") for i in range(10)])
        large = TcamClassifier(W)
        large.install([Rule(i, FULL, i, "a") for i in range(100)])
        assert large.footprint_bits() > small.footprint_bits()


class TestExact:
    def test_lookup(self):
        exact = ExactClassifier(W)
        exact.install([Rule(5, FULL, 1, "five")])
        assert exact.lookup(5).action == "five"
        assert exact.lookup(6) is None

    def test_partial_mask_rejected(self):
        exact = ExactClassifier(W)
        with pytest.raises(ClassifierError):
            exact.install([Rule(5, 0xFF00, 1, "a")])

    def test_duplicate_keys_keep_higher_priority(self):
        exact = ExactClassifier(W)
        exact.install([Rule(5, FULL, 1, "low"), Rule(5, FULL, 9, "high")])
        assert exact.lookup(5).action == "high"

    def test_cheaper_than_tcam(self):
        rules = [Rule(i, FULL, 1, "a") for i in range(64)]
        exact = ExactClassifier(W)
        exact.install(rules)
        tcam = TcamClassifier(W)
        tcam.install(rules)
        assert exact.footprint_bits() < tcam.footprint_bits()


class TestStcam:
    def test_mask_groups(self):
        stcam = StcamClassifier(W, max_masks=4)
        stcam.install([
            Rule(0x1234, FULL, 10, "exact"),
            Rule(0x1200, 0xFF00, 5, "prefix"),
        ])
        assert stcam.lookup(0x1234).action == "exact"
        assert stcam.lookup(0x12AB).action == "prefix"
        assert stcam.lookup(0x9999) is None

    def test_too_many_masks_rejected(self):
        stcam = StcamClassifier(W, max_masks=2)
        rules = [Rule(0, 1 << i, 1, "a") for i in range(3)]
        with pytest.raises(ClassifierError):
            stcam.install(rules)

    def test_priority_across_groups(self):
        stcam = StcamClassifier(W, max_masks=4)
        stcam.install([
            Rule(0x1234, FULL, 1, "low-exact"),
            Rule(0x1200, 0xFF00, 10, "high-prefix"),
        ])
        assert stcam.lookup(0x1234).action == "high-prefix"


class TestLpmTrie:
    def test_longest_prefix_wins(self):
        trie = LpmTrieClassifier(W)
        trie.install([prefix_rule(0x1200, 8, "short"), prefix_rule(0x1230, 12, "long")])
        assert trie.lookup(0x1234).action == "long"
        assert trie.lookup(0x12FF).action == "short"
        assert trie.lookup(0x9999) is None

    def test_default_route(self):
        trie = LpmTrieClassifier(W)
        trie.install([prefix_rule(0, 0, "default")])
        assert trie.lookup(0xFFFF).action == "default"

    def test_non_prefix_mask_rejected(self):
        trie = LpmTrieClassifier(W)
        with pytest.raises(ClassifierError):
            trie.install([Rule(0, 0x0F0F, 1, "a")])


# -- cross-structure agreement property -------------------------------------


@given(
    rules=st.lists(
        st.tuples(st.integers(0, FULL), st.integers(0, W)),
        min_size=1,
        max_size=20,
        unique=True,
    ),
    key=st.integers(0, FULL),
)
@settings(max_examples=200, deadline=None)
def test_structures_agree_on_prefix_rules(rules, key):
    """For prefix rule sets with priority = prefix length, every feasible
    structure returns the same winning rule (the §3 soundness condition for
    swapping structures)."""
    rule_objs = [prefix_rule(v, l) for v, l in rules]
    # Deduplicate by (value & mask, mask): same key-space entry.
    seen = {}
    for rule in rule_objs:
        seen[(rule.value & rule.mask, rule.mask)] = rule
    rule_objs = list(seen.values())

    tcam = TcamClassifier(W)
    tcam.install(rule_objs)
    expected = tcam.lookup(key)

    trie = LpmTrieClassifier(W)
    trie.install(rule_objs)
    got = trie.lookup(key)
    if expected is None:
        assert got is None
    else:
        assert got is not None and got.priority == expected.priority

    stcam = StcamClassifier(W, max_masks=W + 1)
    stcam.install(rule_objs)
    got = stcam.lookup(key)
    if expected is None:
        assert got is None
    else:
        assert got is not None and got.priority == expected.priority
