"""Property tests: the cross-update caches never change any verdict.

The caching layers (delta substitution, solver verdict memo, CNF fragment
reuse, incremental active-entry maintenance) are pure-reuse optimizations:
a warm pipeline must produce verdicts *bit-identical* to a pipeline built
from scratch over the same control-plane state, and the shared-encoding
solver must agree with a fresh-encoding solver on every query.
"""

import random

import pytest

from repro.core.incremental import IncrementalSpecializer
from repro.p4.parser import parse_program
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import DELETE, INSERT, MODIFY, Update
from repro.smt import Solver, terms as T

SOURCE = """
header h_t { bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    action set_n(bit<8> v) { meta.n = v; }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { set_n; noop; }
        default_action = noop();
    }
    apply {
        t1.apply();
        if (meta.m == 8w3) { t2.apply(); }
        if (meta.n == 8w7) { meta.m = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""


def _scratch_verdicts(updates):
    """Point/table verdicts of a cold pipeline over the same control plane."""
    scratch = IncrementalSpecializer(parse_program(SOURCE))
    for update in updates:
        scratch.state.apply_update(update)
    scratch._encode_initial()
    scratch._evaluate_all_points()
    return scratch.point_verdicts, scratch.table_verdicts


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_warm_verdicts_bit_identical_to_scratch(seed):
    """Random insert/modify/delete streams: warm == cold, exactly (``==``,
    not just ``same_specialization``)."""
    incremental = IncrementalSpecializer(parse_program(SOURCE))
    fuzzer = EntryFuzzer(incremental.model, seed=seed)
    rng = random.Random(seed)
    installed: list[Update] = []
    applied: list[Update] = []

    for step in range(30):
        table = rng.choice(["t1", "t2"])
        roll = rng.random()
        live = [u for u in installed if u.table == table]
        if live and roll < 0.2:
            victim = rng.choice(live)
            update = Update(table, DELETE, victim.entry)
            installed.remove(victim)
        elif live and roll < 0.4:
            victim = rng.choice(live)
            entry = fuzzer.entry(table)
            # Same match key, new action data.
            entry = victim.entry.__class__(
                victim.entry.matches, entry.action, entry.args, victim.entry.priority
            )
            update = Update(table, MODIFY, entry)
            installed.remove(victim)
            installed.append(Update(table, INSERT, entry))
        else:
            entry = fuzzer.entry(table)
            if any(u.entry.match_key() == entry.match_key() for u in live):
                continue
            update = Update(table, INSERT, entry)
            installed.append(update)
        incremental.process_update(update)
        applied.append(update)

        if step % 10 == 9:
            point_verdicts, table_verdicts = _scratch_verdicts(applied)
            assert incremental.point_verdicts == point_verdicts
            assert incremental.table_verdicts == table_verdicts

    point_verdicts, table_verdicts = _scratch_verdicts(applied)
    assert incremental.point_verdicts == point_verdicts
    assert incremental.table_verdicts == table_verdicts


def test_flap_cycle_restores_identical_verdicts():
    """Insert → delete → re-insert the same entries: the warm pipeline must
    land on exactly the verdicts of the first insertion (the solver/exec
    caches answer the repeated queries; the answers must not drift)."""
    incremental = IncrementalSpecializer(parse_program(SOURCE))
    fuzzer = EntryFuzzer(incremental.model, seed=11)
    entries = fuzzer.unique_entries("t1", 8)
    for entry in entries:
        incremental.process_update(Update("t1", INSERT, entry))
    snapshot_points = dict(incremental.point_verdicts)
    snapshot_tables = dict(incremental.table_verdicts)
    for _ in range(3):
        for entry in entries:
            incremental.process_update(Update("t1", DELETE, entry))
        for entry in entries:
            incremental.process_update(Update("t1", INSERT, entry))
    assert incremental.point_verdicts == snapshot_points
    assert incremental.table_verdicts == snapshot_tables


class TestSharedEncodingSolverAgrees:
    """The fragment-cached solver is query-for-query equivalent to one that
    re-encodes from scratch."""

    def _random_bool_term(self, rng, depth=0):
        x = T.data_var("x", 8)
        y = T.data_var("y", 8)
        leaves = [
            T.eq(x, T.bv_const(rng.randrange(256), 8)),
            T.ult(T.bv_and(x, T.bv_const(rng.randrange(256), 8)), y),
            T.ule(T.add(x, y), T.bv_const(rng.randrange(256), 8)),
            T.eq(T.bv_xor(x, y), T.bv_const(rng.randrange(256), 8)),
        ]
        if depth >= 3 or rng.random() < 0.4:
            return rng.choice(leaves)
        a = self._random_bool_term(rng, depth + 1)
        b = self._random_bool_term(rng, depth + 1)
        return rng.choice(
            [T.bool_and(a, b), T.bool_or(a, b), T.bool_not(a), T.implies(a, b)]
        )

    def test_verdicts_match_fresh_encoding(self):
        rng = random.Random(5)
        shared = Solver(share_encodings=True)
        queries = [self._random_bool_term(rng) for _ in range(25)]
        # Each query twice: the second round runs entirely from the caches.
        for term in queries + queries:
            fresh = Solver(share_encodings=False)
            assert shared.check_sat(term).satisfiable == fresh.check_sat(term).satisfiable
        assert shared.cache_counter.hits > 0
        assert shared.cnf_counter.hits > 0

    def test_model_decodes_against_original_term(self):
        # A model produced through cone replay + local renumbering must
        # still satisfy the term it was found for.
        solver = Solver(share_encodings=True)
        x = T.data_var("x", 8)
        y = T.data_var("y", 8)
        term = T.bool_and(
            T.eq(T.bv_and(x, T.bv_const(0xF0, 8)), T.bv_const(0x30, 8)),
            T.ult(y, x),
        )
        result = solver.check_sat(term)
        assert result.satisfiable
        assert T.evaluate(term, result.model) == 1
