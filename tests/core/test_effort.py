"""Tests for the specialization effort levels (future-work axis #2)."""

import pytest

from repro.core import EFFORT_DCE, EFFORT_FULL, EFFORT_NONE, Flay, FlayOptions
from repro.core.specializer import Specializer
from repro.p4 import ast_nodes as ast
from repro.p4.parser import parse_program
from repro.runtime.entries import TableEntry, TernaryMatch
from repro.runtime.semantics import INSERT, Update

SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply {
        t.apply();
        meta.m = meta.m + 1;
        if (meta.m == 9) { meta.m = 3; }
    }
}
Pipeline(P(), C()) main;
"""


def flay_at(effort, updates=()):
    flay = Flay.from_source(SOURCE, FlayOptions(target="none", effort=effort))
    for update in updates:
        flay.process_update(update)
    return flay


WILDCARD = Update(
    "t", INSERT, TableEntry((TernaryMatch(0, 0),), "set", (7,), priority=1)
)


class TestEffortLevels:
    def test_none_passes_program_through(self):
        flay = flay_at(EFFORT_NONE)
        assert flay.specialized_program is flay.runtime.program
        assert flay.report.summary() == "no specializations applied"

    def test_dce_removes_empty_table_but_keeps_variables(self):
        flay = flay_at(EFFORT_DCE)
        text = flay.specialized_source()
        assert "table t" not in text  # dead table removed
        # Constant propagation is off: the arithmetic stays symbolic.
        assert "meta.m = meta.m + 1;" in text

    def test_full_propagates_constants(self):
        flay = flay_at(EFFORT_FULL)
        text = flay.specialized_source()
        assert "meta.m = 8w1;" in text

    def test_dce_never_inlines_effectful_actions(self):
        flay = flay_at(EFFORT_DCE, updates=[WILDCARD])
        text = flay.specialized_source()
        # The wildcard makes `set` the only action; FULL would inline it,
        # DCE keeps the (single-action) table.
        assert "table t" in text

    def test_full_inlines_wildcard(self):
        flay = flay_at(EFFORT_FULL, updates=[WILDCARD])
        text = flay.specialized_source()
        assert "table t" not in text
        assert "meta.m = 8w7;" in text

    def test_dce_does_not_narrow_match_kinds(self):
        exact_entry = Update(
            "t", INSERT, TableEntry((TernaryMatch(1, 0xFF),), "set", (7,), priority=1)
        )
        dce = flay_at(EFFORT_DCE, updates=[exact_entry])
        full = flay_at(EFFORT_FULL, updates=[exact_entry])
        assert _table_kind(dce.specialized_program) == "ternary"
        assert _table_kind(full.specialized_program) == "exact"

    def test_unknown_effort_rejected(self):
        from repro.analysis import analyze

        program = parse_program(SOURCE)
        with pytest.raises(ValueError):
            Specializer(program, analyze(program), effort="turbo")

    def test_effort_ordering_by_statements(self):
        """More effort, smaller residual program."""
        from repro.ir import measure

        sizes = {
            effort: measure(flay_at(effort).specialized_program).statements
            for effort in (EFFORT_NONE, EFFORT_DCE, EFFORT_FULL)
        }
        assert sizes[EFFORT_FULL] <= sizes[EFFORT_DCE] <= sizes[EFFORT_NONE]


def _table_kind(program):
    control = program.find("C")
    for local in control.locals:
        if isinstance(local, ast.TableDecl):
            return local.keys[0].match_kind
    return None
