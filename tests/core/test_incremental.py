"""Tests for the control-plane-triggered incremental pipeline."""

import pytest

from repro.core import Flay, FlayOptions
from repro.core.incremental import IncrementalSpecializer
from repro.p4.parser import parse_program
from repro.runtime.entries import ExactMatch, TableEntry, TernaryMatch
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import DELETE, INSERT, Update

SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    action set_n(bit<8> v) { meta.n = v; }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { set_n; noop; }
        default_action = noop();
    }
    apply { t1.apply(); t2.apply(); }
}
Pipeline(P(), C()) main;
"""


def entry(value, mask, action="set", args=(1,), priority=1):
    return TableEntry((TernaryMatch(value, mask),), action, args, priority)


@pytest.fixture()
def runtime():
    return IncrementalSpecializer(parse_program(SOURCE))


class TestDecisions:
    def test_first_entry_triggers_recompile(self, runtime):
        decision = runtime.process_update(Update("t1", INSERT, entry(1, 0xFF)))
        assert decision.recompiled and not decision.forwarded
        assert decision.affected_points > 0

    def test_semantics_preserving_entry_forwarded(self, runtime):
        runtime.process_update(Update("t1", INSERT, entry(1, 0xFF, args=(1,))))
        runtime.process_update(Update("t1", INSERT, entry(2, 0xFF, args=(2,), priority=2)))
        # A third exact-style entry changes no verdict: forward.
        decision = runtime.process_update(
            Update("t1", INSERT, entry(3, 0xFF, args=(3,), priority=3))
        )
        assert decision.forwarded and not decision.recompiled

    def test_delete_back_to_empty_recompiles(self, runtime):
        e = entry(1, 0xFF)
        runtime.process_update(Update("t1", INSERT, e))
        decision = runtime.process_update(Update("t1", DELETE, e))
        assert decision.recompiled

    def test_update_to_other_table_does_not_check_unrelated_points(self, runtime):
        d1 = runtime.process_update(Update("t1", INSERT, entry(1, 0xFF)))
        exact = TableEntry((ExactMatch(1),), "set_n", (5,))
        d2 = runtime.process_update(Update("t2", INSERT, exact))
        # t2's taint set must not include points before t2's apply.
        assert d2.affected_points <= d1.affected_points + 3

    def test_forwarded_and_recompiled_counters(self, runtime):
        runtime.process_update(Update("t1", INSERT, entry(1, 0xFF)))
        runtime.process_update(Update("t1", INSERT, entry(2, 0xFF, priority=2)))
        runtime.process_update(Update("t1", INSERT, entry(3, 0xFF, priority=3)))
        assert runtime.recompiled_count + runtime.forwarded_count == 3

    def test_decision_describe(self, runtime):
        decision = runtime.process_update(Update("t1", INSERT, entry(1, 0xFF)))
        assert "RECOMPILE" in decision.describe()


class TestBatch:
    def test_batch_single_decision(self, runtime):
        fuzzer = EntryFuzzer(runtime.model, seed=1)
        updates = fuzzer.insert_burst("t1", 50, action="set")
        decision = runtime.process_batch(updates)
        assert decision.updates == 50
        # At most one respecialization for the whole burst.
        assert runtime.recompilations <= 2

    def test_batch_of_noops_forwarded(self, runtime):
        runtime.process_update(Update("t1", INSERT, entry(1, 0xFF, args=(1,))))
        runtime.process_update(Update("t1", INSERT, entry(2, 0xFF, args=(2,), priority=2)))
        before = runtime.recompilations
        updates = [
            Update("t1", INSERT, entry(10 + i, 0xFF, args=(i,), priority=10 + i))
            for i in range(20)
        ]
        decision = runtime.process_batch(updates)
        assert not decision.recompiled
        assert runtime.recompilations == before

    def test_batch_describe(self, runtime):
        decision = runtime.process_batch([Update("t1", INSERT, entry(1, 0xFF))])
        assert "batch of 1" in decision.describe()


class TestIncrementalMatchesScratch:
    def test_incremental_equals_from_scratch(self):
        """After any update sequence, the incrementally maintained verdicts
        equal the verdicts of a fresh engine over the same control plane —
        the core correctness property of the incremental pipeline."""
        program = parse_program(SOURCE)
        incremental = IncrementalSpecializer(program)
        updates = [
            Update("t1", INSERT, entry(1, 0xFF, args=(4,))),
            Update("t1", INSERT, entry(2, 0x0F, args=(5,), priority=2)),
            Update("t2", INSERT, TableEntry((ExactMatch(4),), "set_n", (6,))),
            Update("t1", DELETE, entry(1, 0xFF, args=(4,))),
        ]
        for update in updates:
            incremental.process_update(update)

        scratch = IncrementalSpecializer(parse_program(SOURCE))
        for update in updates:
            scratch.state.apply_update(update)
        # Recompute everything from scratch.
        scratch._encode_initial()
        scratch._evaluate_all_points()

        for pid, verdict in incremental.point_verdicts.items():
            assert verdict.same_specialization(scratch.point_verdicts[pid]), pid
        for name, verdict in incremental.table_verdicts.items():
            assert verdict.same_specialization(scratch.table_verdicts[name]), name


class TestFlayFacade:
    def test_from_source_and_summary(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
        flay.process_update(Update("t1", INSERT, entry(1, 0xFF)))
        summary = flay.summary()
        assert "updates processed: 1" in summary
        assert flay.timings.update_ms

    def test_device_compiler_invoked_on_recompile(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="tofino"))
        before = len(flay.compile_reports)
        decision = flay.process_update(Update("t1", INSERT, entry(1, 0xFF)))
        assert decision.recompiled
        assert len(flay.compile_reports) == before + 1
        assert decision.compile_report is not None

    def test_device_compiler_not_invoked_on_forward(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="tofino"))
        flay.process_update(Update("t1", INSERT, entry(1, 0xFF)))
        flay.process_update(Update("t1", INSERT, entry(2, 0xFF, priority=2)))
        before = len(flay.compile_reports)
        decision = flay.process_update(Update("t1", INSERT, entry(3, 0xFF, priority=3)))
        assert decision.forwarded
        assert len(flay.compile_reports) == before

    def test_timings_recorded(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
        assert flay.timings.data_plane_analysis_seconds > 0
        assert flay.timings.parse_seconds > 0
