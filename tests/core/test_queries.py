"""Tests for the specialization queries and verdicts."""

import pytest

from repro.analysis import analyze
from repro.core.queries import ALWAYS, MAYBE, NEVER, QueryEngine, _possible_values
from repro.p4.parser import parse_program
from repro.runtime.entries import ExactMatch, TableEntry, TernaryMatch
from repro.runtime.semantics import ControlPlaneState, INSERT, Update, encode_all, encode_table
from repro.smt import Substitution, terms as T

SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action drop_it() { mark_to_drop(); }
    action noop() { }
    table t {
        key = { hdr.h.f: ternary; }
        actions = { set; drop_it; noop; }
        default_action = noop();
    }
    apply {
        t.apply();
        if (meta.m == 0) {
            meta.m = 1;
        }
    }
}
Pipeline(P(), C()) main;
"""


@pytest.fixture()
def setup():
    model = analyze(parse_program(SOURCE))
    state = ControlPlaneState(model)
    engine = QueryEngine(model)
    return model, state, engine


def _substitution(model, state):
    return Substitution(encode_all(model, state))


class TestPointVerdicts:
    def test_empty_table_makes_if_always(self, setup):
        model, state, engine = setup
        sub = _substitution(model, state)
        if_points = [p for p in model.points.values() if p.kind == "if"]
        (point,) = if_points
        verdict = engine.point_verdict(point, sub)
        # Empty table → default noop → meta.m stays 0 → condition always true.
        assert verdict.executability == ALWAYS

    def test_entry_changes_if_verdict(self, setup):
        model, state, engine = setup
        state.apply_update(
            Update("t", INSERT, TableEntry((TernaryMatch(1, 0xFF),), "set", (5,), 1))
        )
        sub = _substitution(model, state)
        (point,) = [p for p in model.points.values() if p.kind == "if"]
        assert engine.point_verdict(point, sub).executability == MAYBE

    def test_value_point_constant(self, setup):
        model, state, engine = setup
        sub = _substitution(model, state)
        value_points = [p for p in model.points.values() if p.kind == "action-value"]
        for point in value_points:
            verdict = engine.point_verdict(point, sub)
            assert verdict.is_constant  # empty table: all effects constant

    def test_verdict_comparability(self, setup):
        model, state, engine = setup
        sub = _substitution(model, state)
        (point,) = [p for p in model.points.values() if p.kind == "if"]
        a = engine.point_verdict(point, sub)
        b = engine.point_verdict(point, sub)
        assert a.same_specialization(b)


class TestExecutability:
    def test_solver_refines_maybe(self):
        model = analyze(parse_program(SOURCE))
        engine = QueryEngine(model, use_solver=True)
        x = T.data_var("q_x", 8)
        tautology = T.bool_or(T.eq(x, T.bv_const(1, 8)), T.ne(x, T.bv_const(1, 8)))
        assert engine._executability(tautology) == ALWAYS
        contradiction = T.bool_and(T.eq(x, T.bv_const(1, 8)), T.eq(x, T.bv_const(2, 8)))
        assert engine._executability(contradiction) == NEVER

    def test_solver_disabled_returns_maybe(self):
        model = analyze(parse_program(SOURCE))
        engine = QueryEngine(model, use_solver=False)
        x = T.data_var("q_y", 8)
        contradiction = T.bool_and(T.eq(x, T.bv_const(1, 8)), T.eq(x, T.bv_const(2, 8)))
        assert engine._executability(contradiction) == MAYBE

    def test_budget_guard(self):
        model = analyze(parse_program(SOURCE))
        engine = QueryEngine(model, use_solver=True, solver_node_budget=3)
        x = T.data_var("q_z", 8)
        big = T.eq(T.add(T.add(x, x), T.add(x, x)), T.bv_const(0, 8))
        assert engine._executability(big) == MAYBE


class TestTableVerdicts:
    def test_empty_table(self, setup):
        model, state, engine = setup
        info = model.table("t")
        assignment = encode_table(info, state.table_state("t"))
        verdict = engine.table_verdict(info, assignment, state.table_state("t"))
        assert verdict.feasible_actions == frozenset({"noop"})
        assert verdict.hit == NEVER
        assert verdict.match_plan == ("none",)

    def test_single_full_mask_entry_narrows_to_exact(self, setup):
        model, state, engine = setup
        state.apply_update(
            Update("t", INSERT, TableEntry((TernaryMatch(2, 0xFF),), "set", (9,), 1))
        )
        info = model.table("t")
        assignment = encode_table(info, state.table_state("t"))
        verdict = engine.table_verdict(info, assignment, state.table_state("t"))
        assert verdict.feasible_actions == frozenset({"set", "noop"})
        assert verdict.match_plan == ("exact",)
        assert dict(verdict.const_params)[("set", "v")] == 9

    def test_partial_mask_stays_ternary(self, setup):
        model, state, engine = setup
        state.apply_update(
            Update("t", INSERT, TableEntry((TernaryMatch(2, 0x0F),), "set", (9,), 1))
        )
        info = model.table("t")
        assignment = encode_table(info, state.table_state("t"))
        verdict = engine.table_verdict(info, assignment, state.table_state("t"))
        assert verdict.match_plan == ("ternary",)

    def test_wildcard_entry_forces_action(self, setup):
        model, state, engine = setup
        state.apply_update(
            Update("t", INSERT, TableEntry((TernaryMatch(0, 0),), "set", (3,), 1))
        )
        info = model.table("t")
        assignment = encode_table(info, state.table_state("t"))
        verdict = engine.table_verdict(info, assignment, state.table_state("t"))
        # The wildcard always matches: selector constant `set`, hit always.
        assert verdict.feasible_actions == frozenset({"set"})
        assert verdict.hit == ALWAYS

    def test_overapprox_covers_everything(self, setup):
        model, state, engine = setup
        for i in range(4):
            state.apply_update(
                Update("t", INSERT, TableEntry((TernaryMatch(i, 0xFF),), "set", (i,), i + 1))
            )
        info = model.table("t")
        assignment = encode_table(info, state.table_state("t"), threshold=2)
        verdict = engine.table_verdict(info, assignment, state.table_state("t"))
        assert verdict.overapproximated
        assert verdict.feasible_actions == frozenset({"set", "drop_it", "noop"})
        assert verdict.hit == MAYBE

    def test_verdict_change_detection(self, setup):
        model, state, engine = setup
        info = model.table("t")
        empty = engine.table_verdict(
            info, encode_table(info, state.table_state("t")), state.table_state("t")
        )
        state.apply_update(
            Update("t", INSERT, TableEntry((TernaryMatch(2, 0xFF),), "set", (9,), 1))
        )
        configured = engine.table_verdict(
            info, encode_table(info, state.table_state("t")), state.table_state("t")
        )
        assert not empty.same_specialization(configured)


class TestPossibleValues:
    def test_constant(self):
        assert _possible_values(T.bv_const(3, 8)) == {3}

    def test_ite_tree(self):
        x = T.data_var("pv_x", 8)
        tree = T.ite(
            T.eq(x, T.bv_const(0, 8)),
            T.bv_const(1, 8),
            T.ite(T.eq(x, T.bv_const(1, 8)), T.bv_const(2, 8), T.bv_const(3, 8)),
        )
        assert _possible_values(tree) == {1, 2, 3}

    def test_opaque_term_returns_none(self):
        assert _possible_values(T.data_var("pv_y", 8)) is None
