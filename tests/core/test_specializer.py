"""Tests for the specializing transformer (via the Flay facade, which wires
verdicts to the specializer the way the runtime does)."""

import pytest

from repro.core import Flay, FlayOptions
from repro.p4 import ast_nodes as ast
from repro.p4.printer import print_program
from repro.runtime.entries import ExactMatch, TableEntry, TernaryMatch
from repro.runtime.semantics import INSERT, Update, ValueSetUpdate


def flay_for(source, **options):
    return Flay.from_source(source, FlayOptions(target="none", **options))


BASE = """
header h_t {{ bit<8> f; bit<8> g; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> m; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ pkt_extract(hdr.h); transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals}
    apply {{ {body} }}
}}
Pipeline(P(), C()) main;
"""

TABLE = """
    action set(bit<8> v) { meta.m = v; }
    action drop_it() { mark_to_drop(); }
    action noop() { }
    table t {
        key = { hdr.h.f: ternary; }
        actions = { set; drop_it; noop; }
        default_action = noop();
        size = 32;
    }
"""


def entry(value, mask, action="set", args=(1,), priority=1):
    return TableEntry((TernaryMatch(value, mask),), action, args, priority)


class TestTableSpecialization:
    def test_empty_table_with_noop_default_removed(self):
        flay = flay_for(BASE.format(locals=TABLE, body="t.apply();"))
        text = flay.specialized_source()
        assert "table t" not in text
        assert "C.t" in flay.report.removed_tables

    def test_empty_table_with_effectful_default_inlined(self):
        locals_ = TABLE.replace("default_action = noop();", "default_action = set(8w7);")
        flay = flay_for(BASE.format(locals=locals_, body="t.apply();"))
        text = flay.specialized_source()
        assert "table t" not in text
        assert "meta.m = 8w7;" in text

    def test_wildcard_entry_inlines_action(self):
        flay = flay_for(BASE.format(locals=TABLE, body="t.apply();"))
        flay.process_update(Update("t", INSERT, entry(0, 0, args=(0x42,))))
        text = flay.specialized_source()
        assert "table t" not in text
        assert "meta.m = 8w0x42;" in text

    def test_unused_actions_dropped(self):
        flay = flay_for(BASE.format(locals=TABLE, body="t.apply();"))
        flay.process_update(Update("t", INSERT, entry(1, 0xFF, args=(2,))))
        text = flay.specialized_source()
        assert "table t" in text
        assert "drop_it" not in text  # never selected by any entry
        assert "C.t" in flay.report.removed_actions

    def test_match_kind_narrowed_to_exact(self):
        flay = flay_for(BASE.format(locals=TABLE, body="t.apply();"))
        flay.process_update(Update("t", INSERT, entry(1, 0xFF)))
        table = _find_table(flay.specialized_program, "C", "t")
        assert table.keys[0].match_kind == "exact"

    def test_partial_masks_stay_ternary(self):
        flay = flay_for(BASE.format(locals=TABLE, body="t.apply();"))
        flay.process_update(Update("t", INSERT, entry(1, 0x0F)))
        table = _find_table(flay.specialized_program, "C", "t")
        assert table.keys[0].match_kind == "ternary"


class TestBranchSpecialization:
    def test_never_branch_removed(self):
        body = """
        t.apply();
        if (meta.m == 9) { meta.m = 1; }
        """
        # Empty table → noop → m stays 0 → condition never true.
        flay = flay_for(BASE.format(locals=TABLE, body=body))
        text = flay.specialized_source()
        assert "if" not in text

    def test_always_branch_flattened(self):
        body = """
        t.apply();
        if (meta.m == 0) { meta.m = 1; } else { meta.m = 2; }
        """
        flay = flay_for(BASE.format(locals=TABLE, body=body))
        text = flay.specialized_source()
        assert "meta.m = 1;" in text
        assert "meta.m = 2;" not in text

    def test_hit_never_uses_else(self):
        body = """
        if (t.apply().hit) { meta.m = 1; } else { meta.m = 2; }
        """
        flay = flay_for(BASE.format(locals=TABLE, body=body))
        text = flay.specialized_source()
        assert "meta.m = 2;" in text
        assert "meta.m = 1;" not in text

    def test_hit_always_uses_then(self):
        body = """
        if (t.apply().hit) { meta.m = 1; } else { meta.m = 2; }
        """
        flay = flay_for(BASE.format(locals=TABLE, body=body))
        flay.process_update(Update("t", INSERT, entry(0, 0)))  # wildcard: always hits
        text = flay.specialized_source()
        assert "meta.m = 1;" in text
        assert "meta.m = 2;" not in text

    def test_hit_maybe_keeps_condition(self):
        body = """
        if (t.apply().hit) { meta.m = 1; } else { meta.m = 2; }
        """
        flay = flay_for(BASE.format(locals=TABLE, body=body))
        flay.process_update(Update("t", INSERT, entry(1, 0xFF)))
        text = flay.specialized_source()
        assert "t.apply().hit" in text

    def test_switch_arms_filtered(self):
        body = """
        switch (t.apply().action_run) {
            set: { meta.m = 10; }
            drop_it: { meta.m = 20; }
            default: { meta.m = 30; }
        }
        """
        flay = flay_for(BASE.format(locals=TABLE, body=body))
        flay.process_update(Update("t", INSERT, entry(1, 0xFF)))
        text = flay.specialized_source()
        assert "meta.m = 0xa;" in text  # set feasible
        assert "meta.m = 0x14;" not in text  # drop_it infeasible
        assert "meta.m = 0x1e;" in text  # default (noop) feasible on miss


class TestConstantPropagation:
    def test_constant_assignment_folded(self):
        body = """
        t.apply();
        meta.m = meta.m + 1;
        """
        flay = flay_for(BASE.format(locals=TABLE, body=body))
        text = flay.specialized_source()
        # Empty table: m is 0 after apply, so m+1 is the constant 1.
        assert "meta.m = 8w1;" in text
        assert flay.report.constants_propagated >= 1


class TestParserSpecialization:
    PVS_SOURCE = """
header a_t { bit<16> tag; }
header b_t { bit<8> x; }
struct headers_t { a_t a; b_t b; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    value_set<bit<16>>(2) pvs;
    state start {
        pkt_extract(hdr.a);
        transition select(hdr.a.tag) {
            pvs: parse_b;
            default: accept;
        }
    }
    state parse_b {
        pkt_extract(hdr.b);
        transition accept;
    }
}
control C(inout headers_t hdr, inout meta_t meta) {
    apply { meta.m = hdr.b.x; }
}
Pipeline(P(), C()) main;
"""

    def test_unconfigured_value_set_branch_removed(self):
        flay = flay_for(self.PVS_SOURCE)
        parser_decl = flay.specialized_program.find("P")
        state_names = {s.name for s in parser_decl.states}
        assert "parse_b" not in state_names
        assert flay.report.removed_select_cases >= 1

    def test_configuring_value_set_restores_branch(self):
        flay = flay_for(self.PVS_SOURCE)
        decision = flay.process_value_set_update(ValueSetUpdate("pvs", (0x800,)))
        assert decision.recompiled
        parser_decl = flay.specialized_program.find("P")
        state_names = {s.name for s in parser_decl.states}
        assert "parse_b" in state_names

    TAIL_SOURCE = """
header a_t { bit<16> tag; }
header b_t { bit<8> x; }
struct headers_t { a_t a; b_t b; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start {
        pkt_extract(hdr.a);
        pkt_extract(hdr.b);
        transition accept;
    }
}
control C(inout headers_t hdr, inout meta_t meta) {
    apply { meta.m = (bit<8>) hdr.a.tag; }
}
Pipeline(P(), C()) main;
"""

    def test_unused_tail_header_pruned(self):
        flay = flay_for(self.TAIL_SOURCE)
        assert "hdr.b" in flay.report.pruned_headers
        text = flay.specialized_source()
        assert "pkt_extract(hdr.b)" not in text
        assert "pkt_extract(hdr.a)" in text

    def test_tail_pruning_can_be_disabled(self):
        flay = flay_for(self.TAIL_SOURCE, prune_parser_tail=False)
        assert "pkt_extract(hdr.b)" in flay.specialized_source()

    def test_used_header_not_pruned(self):
        source = self.TAIL_SOURCE.replace(
            "meta.m = (bit<8>) hdr.a.tag;", "meta.m = hdr.b.x;"
        )
        flay = flay_for(source)
        assert "pkt_extract(hdr.b)" in flay.specialized_source()


def _find_table(program, control_name, table_name):
    control = program.find(control_name)
    for local in control.locals:
        if isinstance(local, ast.TableDecl) and local.name == table_name:
            return local
    raise AssertionError(f"table {table_name} not found")
