"""Tests for the eBPF map model."""

import pytest

from repro.ebpf import ARRAY, Field, HASH, LPM_TRIE, MapError, MapRuntime, MapSpec
from repro.runtime.entries import ExactMatch, LpmMatch
from repro.runtime.semantics import DELETE, INSERT, MODIFY


def hash_map(name="m", key_width=32, values=(("v", 16),)):
    return MapSpec(
        name, HASH, (Field("k", key_width),), tuple(Field(n, w) for n, w in values)
    )


class TestSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MapSpec("m", "ringbuf", (Field("k", 32),), (Field("v", 32),))

    def test_lpm_requires_single_key(self):
        with pytest.raises(ValueError):
            MapSpec("m", LPM_TRIE, (Field("a", 32), Field("b", 32)), (Field("v", 8),))

    def test_array_key_bounds(self):
        with pytest.raises(ValueError):
            MapSpec("m", ARRAY, (Field("idx", 64),), (Field("v", 8),))

    def test_table_and_action_names(self):
        spec = hash_map("counters")
        assert spec.table_name == "map_counters"
        assert spec.action_name == "set_counters_value"


class TestRuntime:
    def test_update_then_modify(self):
        runtime = MapRuntime(hash_map(), "C.map_m")
        first = runtime.update_elem(5, (7,))
        assert first.op == INSERT
        second = runtime.update_elem(5, (9,))
        assert second.op == MODIFY
        assert len(runtime) == 1

    def test_delete(self):
        runtime = MapRuntime(hash_map(), "C.map_m")
        runtime.update_elem(5, (7,))
        update = runtime.delete_elem(5)
        assert update.op == DELETE
        assert len(runtime) == 0

    def test_delete_missing_rejected(self):
        runtime = MapRuntime(hash_map(), "C.map_m")
        with pytest.raises(MapError):
            runtime.delete_elem(5)

    def test_key_width_checked(self):
        runtime = MapRuntime(hash_map(key_width=8), "C.map_m")
        with pytest.raises(MapError):
            runtime.update_elem(256, (1,))

    def test_value_arity_checked(self):
        runtime = MapRuntime(hash_map(values=(("a", 8), ("b", 8))), "C.map_m")
        with pytest.raises(MapError):
            runtime.update_elem(1, (1,))

    def test_lpm_requires_prefix(self):
        spec = MapSpec("r", LPM_TRIE, (Field("dst", 32),), (Field("v", 8),))
        runtime = MapRuntime(spec, "C.map_r")
        with pytest.raises(MapError):
            runtime.update_elem(0x0A000000, (1,))
        update = runtime.update_elem(0x0A000000, (1,), prefix_len=8)
        assert isinstance(update.entry.matches[0], LpmMatch)

    def test_array_index_bounds(self):
        spec = MapSpec("a", ARRAY, (Field("idx", 16),), (Field("v", 8),), max_entries=4)
        runtime = MapRuntime(spec, "C.map_a")
        runtime.update_elem(3, (1,))
        with pytest.raises(MapError):
            runtime.update_elem(4, (1,))

    def test_hash_entry_shape(self):
        runtime = MapRuntime(hash_map(), "C.map_m")
        update = runtime.update_elem(0xAB, (3,))
        assert update.table == "C.map_m"
        assert update.entry.matches == (ExactMatch(0xAB),)
        assert update.entry.action == "set_m_value"
        assert update.entry.args == (3,)
