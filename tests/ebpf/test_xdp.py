"""Tests for XDP program translation and the EbpfFlay pipeline."""

import pytest

from repro.ebpf import (
    Assign,
    EbpfFlay,
    If,
    Lookup,
    Return,
    ScratchVar,
    TranslationError,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
    XdpProgram,
    translate,
)
from repro.p4.parser import parse_program


def firewall_program() -> XdpProgram:
    prog = XdpProgram("xdp_fw")
    prog.hash_map("blocked", key=[("saddr", 32)], value=[("hits", 32)])
    prog.lpm_map("routes", key=[("daddr", 32)], value=[("ifindex", 16)])
    prog.body = [
        If(
            "ctx.ip.isValid()",
            then=(
                Lookup("blocked", ("ctx.ip.saddr",), hit=(Return(XDP_DROP),)),
                Lookup(
                    "routes",
                    ("ctx.ip.daddr",),
                    hit=(
                        Assign("ctx.ip.ttl", "ctx.ip.ttl - 1"),
                        Return(XDP_REDIRECT, "meta.routes_ifindex"),
                    ),
                    miss=(Return(XDP_PASS),),
                ),
            ),
        ),
    ]
    return prog


class TestTranslation:
    def test_output_parses(self):
        program = parse_program(translate(firewall_program()))
        assert program.pipeline.parser == "XdpParser"

    def test_map_kinds_become_match_kinds(self):
        text = translate(firewall_program())
        assert "ctx.ip.saddr: exact;" in text
        assert "ctx.ip.daddr: lpm;" in text

    def test_value_fields_become_metadata(self):
        text = translate(firewall_program())
        assert "bit<16> routes_ifindex;" in text
        assert "bit<32> blocked_hits;" in text

    def test_returns_become_verdicts(self):
        text = translate(firewall_program())
        assert f"meta.xdp_verdict = {XDP_DROP};" in text
        assert "mark_to_drop();" in text
        assert "exit;" in text

    def test_unused_map_has_no_table(self):
        prog = firewall_program()
        prog.hash_map("unused", key=[("k", 8)], value=[("v", 8)])
        text = translate(prog)
        assert "table map_unused" not in text

    def test_double_lookup_rejected(self):
        prog = firewall_program()
        prog.body.append(Lookup("blocked", ("ctx.ip.daddr",)))
        with pytest.raises(TranslationError):
            translate(prog)

    def test_key_arity_checked(self):
        prog = firewall_program()
        prog.body = [Lookup("blocked", ("ctx.ip.saddr", "ctx.ip.daddr"))]
        with pytest.raises(TranslationError):
            translate(prog)

    def test_redirect_requires_expr(self):
        prog = XdpProgram("p")
        prog.body = [Return(XDP_REDIRECT)]
        with pytest.raises(TranslationError):
            translate(prog)

    def test_scratch_vars_emitted(self):
        prog = XdpProgram("p")
        prog.scratch.append(ScratchVar("acc", 16))
        prog.body = [Assign("meta.acc", "16w1")]
        assert "bit<16> acc;" in translate(prog)


class TestEbpfFlay:
    def test_empty_maps_collapse_program(self):
        flay = EbpfFlay(firewall_program())
        text = flay.specialized_source()
        # No map entries: both lookups always miss -> everything folds to
        # "return XDP_PASS".
        assert "map_blocked" not in text
        assert "map_routes" not in text
        assert "ctx.ip.ttl" not in text

    def test_first_map_entry_recompiles(self):
        flay = EbpfFlay(firewall_program())
        result = flay.map_update_elem("blocked", 0x0A000001, 0)
        assert result.decision.recompiled
        assert "map_blocked" in flay.specialized_source()

    def test_subsequent_entries_forwarded(self):
        flay = EbpfFlay(firewall_program())
        flay.map_update_elem("blocked", 0x0A000001, 0)
        flay.map_update_elem("blocked", 0x0A000002, 0)
        result = flay.map_update_elem("blocked", 0x0A000003, 0)
        assert result.decision.forwarded

    def test_delete_back_to_empty_recompiles(self):
        flay = EbpfFlay(firewall_program())
        flay.map_update_elem("blocked", 0x0A000001, 0)
        result = flay.map_delete_elem("blocked", 0x0A000001)
        assert result.decision.recompiled
        assert "map_blocked" not in flay.specialized_source()

    def test_unused_map_update_rejected(self):
        prog = firewall_program()
        prog.hash_map("unused", key=[("k", 8)], value=[("v", 8)])
        flay = EbpfFlay(prog)
        with pytest.raises(KeyError):
            flay.map_update_elem("unused", 1, 1)

    def test_specialized_equals_original_on_packets(self):
        """The soundness invariant holds through the eBPF surface too."""
        from repro.runtime.semantics import ControlPlaneState
        from repro.targets.bmv2 import Interpreter, PacketBuilder

        flay = EbpfFlay(firewall_program())
        flay.map_update_elem("blocked", 0x0A000001, 0)
        flay.map_update_elem("routes", 0x0B000000, 7, prefix_len=8)

        def ip_packet(saddr, daddr):
            return (
                PacketBuilder()
                .push(0, 48).push(0, 48).push(0x0800, 16)   # eth
                .push(4, 4).push(5, 4).push(0, 8).push(40, 16)
                .push(0, 16).push(0, 16).push(64, 8).push(6, 8)
                .push(0, 16).push(saddr, 32).push(daddr, 32)
                .build()
            )

        original = Interpreter(flay.flay.runtime.program)
        specialized = Interpreter(flay.flay.specialized_program)
        state = flay.flay.runtime.state
        for saddr, daddr in (
            (0x0A000001, 0x0B000005),  # blocked source
            (0x01020304, 0x0B000005),  # routed
            (0x01020304, 0x0C000005),  # miss -> pass
        ):
            a = original.run(ip_packet(saddr, daddr), state)
            b = specialized.run(ip_packet(saddr, daddr), state)
            assert a.dropped == b.dropped
            assert a.store["meta.xdp_verdict"] == b.store["meta.xdp_verdict"]
            assert a.store["meta.redirect_ifindex"] == b.store["meta.redirect_ifindex"]
