"""Property + handwritten tests for the batch coalescer.

The coalescer's contract: replaying the *coalesced* stream against any
pre-batch control-plane state yields exactly the same final state — same
entries, same dict insertion order (which exact-match precedence depends
on), same eclipse-elided active lists — as replaying the original stream,
while within-batch-inconsistent streams raise :class:`EntryError` up
front.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze
from repro.engine.batch import coalesce
from repro.p4.parser import parse_program
from repro.runtime.entries import EntryError, ExactMatch, TableEntry, TernaryMatch
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import (
    DELETE,
    INSERT,
    MODIFY,
    ControlPlaneState,
    Update,
    ValueSetUpdate,
)

SOURCE = """
header h_t { bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table tern {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table flat {
        key = { hdr.h.g: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply { tern.apply(); flat.apply(); }
}
Pipeline(P(), C()) main;
"""


@pytest.fixture(scope="module")
def model():
    return analyze(parse_program(SOURCE))


def tern(value, mask=0xFF, action="set", args=(1,), priority=1):
    return TableEntry((TernaryMatch(value, mask),), action, args, priority)


def flat(value, action="set", args=(1,)):
    return TableEntry((ExactMatch(value),), action, args, 0)


def replay(model, state_updates, batch):
    """Final state after ``state_updates`` then ``batch``, table by table."""
    state = ControlPlaneState(model)
    for update in state_updates:
        state.apply_update(update)
    for update in batch:
        if isinstance(update, ValueSetUpdate):
            state.apply_value_set_update(update)
        else:
            state.apply_update(update)
    return {
        name: (table.entries(), table.active_entries())
        for name, table in state.tables.items()
    }


class TestFolds:
    def test_insert_then_delete_vanishes(self):
        entry = tern(1)
        result = coalesce(
            [Update("t", INSERT, entry), Update("t", DELETE, entry)]
        )
        assert result.ops == []
        assert result.folded_count == 2

    def test_modify_after_insert_collapses_into_insert(self):
        first, second = tern(1, args=(1,)), tern(1, args=(9,))
        result = coalesce(
            [Update("t", INSERT, first), Update("t", MODIFY, second)]
        )
        (op,) = result.ops
        assert op.update.op == INSERT
        assert op.update.entry is second
        assert op.anchor == 0  # precedence position of the original insert
        assert op.sources == (0, 1)

    def test_repeated_modify_keeps_last_write(self):
        versions = [tern(1, args=(v,)) for v in (1, 2, 3)]
        result = coalesce([Update("t", MODIFY, v) for v in versions])
        (op,) = result.ops
        assert op.update.op == MODIFY
        assert op.update.entry is versions[-1]

    def test_modify_then_delete_folds_to_delete(self):
        result = coalesce(
            [Update("t", MODIFY, tern(1, args=(5,))), Update("t", DELETE, tern(1))]
        )
        (op,) = result.ops
        assert op.update.op == DELETE

    def test_delete_then_reinsert_emits_both_in_order(self):
        result = coalesce(
            [Update("t", DELETE, tern(1)), Update("t", INSERT, tern(1, args=(7,)))]
        )
        assert [op.update.op for op in result.ops] == [DELETE, INSERT]

    def test_survivors_keep_relative_input_order(self):
        a, b, c = tern(1), tern(2), tern(3)
        result = coalesce(
            [
                Update("t", INSERT, a),
                Update("t", INSERT, b),
                Update("t", DELETE, a),  # cancels the first insert
                Update("t", INSERT, c),
            ]
        )
        assert [op.update.entry for op in result.ops] == [b, c]
        assert [op.anchor for op in result.ops] == [1, 3]

    def test_value_set_last_write_wins(self):
        result = coalesce(
            [
                ValueSetUpdate("vs", (1, 2)),
                Update("t", INSERT, tern(1)),
                ValueSetUpdate("vs", (9,)),
            ]
        )
        vs_ops = [op for op in result.ops if isinstance(op.update, ValueSetUpdate)]
        (op,) = vs_ops
        assert op.update.values == (9,)
        assert op.anchor == 0  # anchored where the set was first reconfigured
        assert op.sources == (0, 2)

    def test_priority_tie_preserves_insertion_order(self, model):
        # Two ternary entries with equal priority: precedence falls back to
        # insertion order, so the coalesced replay must install them in the
        # original order even after an unrelated fold in between.
        a, b = tern(1, priority=5), tern(2, priority=5)
        scratch = tern(3, priority=5)
        batch = [
            Update("tern", INSERT, a),
            Update("tern", INSERT, scratch),
            Update("tern", INSERT, b),
            Update("tern", DELETE, scratch),
        ]
        result = coalesce(batch)
        assert replay(model, [], [op.update for op in result.ops]) == replay(
            model, [], batch
        )

    def test_alias_resolution_folds_across_names(self, model):
        entry = flat(4)
        result = coalesce(
            [Update("flat", INSERT, entry), Update("C.flat", DELETE, entry)],
            resolve_table=lambda name: model.table(name).name,
        )
        assert result.ops == []


class TestInvalidStreams:
    def test_double_insert_raises(self):
        entry = tern(1)
        with pytest.raises(EntryError):
            coalesce([Update("t", INSERT, entry), Update("t", INSERT, entry)])

    def test_modify_after_delete_raises(self):
        with pytest.raises(EntryError):
            coalesce(
                [Update("t", DELETE, tern(1)), Update("t", MODIFY, tern(1))]
            )

    def test_delete_after_delete_raises(self):
        with pytest.raises(EntryError):
            coalesce(
                [Update("t", DELETE, tern(1)), Update("t", DELETE, tern(1))]
            )

    def test_modify_after_cancelled_insert_raises(self):
        # insert+delete proves the key was dead before the batch, so a
        # later modify can never be valid — caught at coalesce time, just
        # like sequential application would catch it at apply time.
        entry = tern(1)
        with pytest.raises(EntryError):
            coalesce(
                [
                    Update("t", INSERT, entry),
                    Update("t", DELETE, entry),
                    Update("t", MODIFY, tern(1, args=(2,))),
                ]
            )

    def test_validation_is_all_or_nothing(self):
        # The invalid op sits at the end; coalesce must raise without
        # having leaked any of the earlier (valid) folds to the caller.
        with pytest.raises(EntryError):
            coalesce(
                [
                    Update("t", INSERT, tern(1)),
                    Update("t", INSERT, tern(2)),
                    Update("t", INSERT, tern(2)),  # duplicate
                ]
            )


class TestReplayEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        prefix=st.integers(min_value=0, max_value=30),
        modify_fraction=st.floats(min_value=0.0, max_value=0.9),
        delete_fraction=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_coalesced_replay_matches_original(
        self, model, seed, prefix, modify_fraction, delete_fraction
    ):
        """Replaying net ops == replaying the full stream, for any split of
        a fuzzed stream into pre-batch state and batch."""
        fuzzer = EntryFuzzer(model, seed=seed)
        stream = fuzzer.update_stream(
            tables=["tern", "flat"],
            count=60,
            modify_fraction=modify_fraction,
            delete_fraction=delete_fraction,
        )
        pre, batch = stream[:prefix], stream[prefix:]
        result = coalesce(batch)
        assert result.output_count <= result.input_count
        net = [op.update for op in result.ops]
        assert replay(model, pre, net) == replay(model, pre, batch)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_anchor_order_is_strictly_increasing(self, model, seed):
        fuzzer = EntryFuzzer(model, seed=seed)
        stream = fuzzer.update_stream(tables=["tern", "flat"], count=40)
        result = coalesce(stream)
        anchors = [op.anchor for op in result.ops]
        assert anchors == sorted(anchors)
        assert len(set(anchors)) == len(anchors)
