"""Differential safety net: batched application == one-at-a-time application.

Streams come from the fuzzer, batch sizes and worker counts are drawn per
seed, and every real target backend is exercised.  Two regimes:

* **always** — whatever the stream does (recompiles included), the final
  specialized source, verdicts, and control-plane state of the batched
  engine are identical to the sequential engine's, and a batched engine's
  output is byte-identical across worker counts (1, 2, 4);
* **forwarded** — once the tables are saturated with entries covering
  every action, further inserts change no verdict; there the *lowered
  update stream* sent to the device must also be byte-identical to the
  sequential engine's (same writes, same order).

CI runs this module twice, with ``FLAY_BATCH_WORKERS=1`` and ``=4`` (see
the workflow); locally the env var defaults to 2.
"""

import os
import random

import pytest

from repro.core import Flay, FlayOptions
from repro.p4.parser import parse_program
from repro.p4.printer import print_program
from repro.runtime.fuzzer import EntryFuzzer

TARGETS = ("tofino", "tofino-incremental", "bmv2")

#: CI matrix axis: the worker count used by the mixed-stream regime.
ENV_WORKERS = int(os.environ.get("FLAY_BATCH_WORKERS", "2"))

SOURCE = """
header h_t { bit<8> a; bit<8> b; bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action setn(bit<8> v) { meta.n = v; }
    action noop() { }
    table ta {
        key = { hdr.h.a: exact; }
        actions = { setn; noop; }
        default_action = noop();
    }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply {
        ta.apply();
        t1.apply();
        if (meta.m == 8w3) { t2.apply(); }
        if (meta.n == 8w7) { hdr.h.g = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""

ALL_TABLES = ["ta", "t1", "t2"]


def make_flay(target):
    return Flay(parse_program(SOURCE), FlayOptions(target=target))


def chunk(stream, seed):
    """Split a stream into random-size batches (1..12), seeded."""
    rng = random.Random(seed * 7919 + 13)
    batches, i = [], 0
    while i < len(stream):
        size = rng.randint(1, 12)
        batches.append(stream[i : i + size])
        i += size
    return batches


def final_state(flay):
    return {
        name: table.entries()
        for name, table in flay.runtime.state.tables.items()
    }


def lowered_trace(flay):
    return [
        (lowered.target, lowered.table, lowered.update)
        for lowered in flay.runtime.lowered_updates
    ]


def assert_same_result(a, b):
    assert a.runtime.point_verdicts == b.runtime.point_verdicts
    assert a.runtime.table_verdicts == b.runtime.table_verdicts
    assert a.specialized_source() == b.specialized_source()
    assert final_state(a) == final_state(b)


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("seed", [0, 5, 11])
def test_mixed_stream_same_final_output(target, seed):
    """Batched vs sequential over a mixed insert/modify/delete stream:
    identical final program, verdicts, and control-plane state — even when
    the stream forces recompiles along the way."""
    sequential = make_flay(target)
    batched = make_flay(target)
    stream = EntryFuzzer(sequential.model, seed=seed).update_stream(
        tables=ALL_TABLES, count=50, modify_fraction=0.3, delete_fraction=0.2
    )
    for update in stream:
        sequential.process_update(update)
    for batch in chunk(stream, seed):
        batched.apply_batch(batch, workers=ENV_WORKERS)
    assert_same_result(sequential, batched)


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("seed", [1, 2])
def test_forwarded_regime_lowered_streams_byte_identical(target, seed):
    """Saturate every action, then burst inserts: nothing respecializes, and
    the batched engine hands the device the exact same write sequence the
    sequential engine does."""
    sequential = make_flay(target)
    batched = make_flay(target)
    fuzzer = EntryFuzzer(sequential.model, seed=seed)
    warmup = []
    for table in ALL_TABLES:
        warmup.extend(fuzzer.representative_updates(table, per_action=3))
    # Same warmup through the same entry point on both engines.
    sequential.process_batch(warmup)
    batched.process_batch(warmup)
    lowered_before = len(sequential.runtime.lowered_updates)

    burst = []
    for table in ALL_TABLES:
        burst.extend(fuzzer.insert_burst(table, 10))
    rng = random.Random(seed)
    rng.shuffle(burst)
    for update in burst:
        decision = sequential.process_update(update)
        assert decision.forwarded, "stream was expected to saturate verdicts"
    for batch in chunk(burst, seed):
        report = batched.apply_batch(batch, workers=ENV_WORKERS)
        assert report.forwarded

    assert sequential.runtime.recompilations == batched.runtime.recompilations
    assert lowered_trace(sequential) == lowered_trace(batched)
    # Every submitted write reached the device, in submission order.
    assert lowered_trace(sequential)[lowered_before:] == [
        (sequential.runtime.device_compiler.name, u.table, u) for u in burst
    ]
    assert_same_result(sequential, batched)


@pytest.mark.parametrize("seed", [3, 8])
def test_output_invariant_across_worker_counts(seed):
    """workers=1, 2, 4 over the same chunked stream: byte-identical source,
    verdicts, state, and lowered writes."""
    engines = {w: make_flay("tofino") for w in (1, 2, 4)}
    stream = EntryFuzzer(engines[1].model, seed=seed).update_stream(
        tables=ALL_TABLES, count=60, modify_fraction=0.25, delete_fraction=0.15
    )
    reports = {w: [] for w in engines}
    for workers, flay in engines.items():
        for batch in chunk(stream, seed):
            reports[workers].append(flay.apply_batch(batch, workers=workers))
    baseline = engines[1]
    for workers, flay in engines.items():
        if workers == 1:
            continue
        assert_same_result(baseline, flay)
        assert lowered_trace(baseline) == lowered_trace(flay)
        for a, b in zip(reports[1], reports[workers]):
            assert a.changed == b.changed
            assert a.recompiled == b.recompiled
            assert a.coalesced_count == b.coalesced_count
            assert a.group_count == b.group_count


@pytest.mark.parametrize("seed", [3, 8])
def test_output_invariant_across_executors(seed):
    """serial, thread, and process executors over the same chunked stream:
    byte-identical source, verdicts, state, and lowered writes.  The
    process executor ships results home as arena payloads; decoding
    re-interns through the shared factory, so nothing downstream can tell
    which side of a fork a verdict was computed on."""
    executors = ("serial", "thread", "process")
    engines = {e: make_flay("tofino") for e in executors}
    stream = EntryFuzzer(engines["serial"].model, seed=seed).update_stream(
        tables=ALL_TABLES, count=40, modify_fraction=0.25, delete_fraction=0.15
    )
    reports = {e: [] for e in executors}
    for executor, flay in engines.items():
        for batch in chunk(stream, seed):
            reports[executor].append(
                flay.apply_batch(batch, workers=4, executor=executor)
            )
    baseline = engines["serial"]
    for executor, flay in engines.items():
        if executor == "serial":
            continue
        assert_same_result(baseline, flay)
        assert lowered_trace(baseline) == lowered_trace(flay)
        for a, b in zip(reports["serial"], reports[executor]):
            assert a.changed == b.changed
            assert a.recompiled == b.recompiled
            assert a.coalesced_count == b.coalesced_count
            assert a.group_count == b.group_count


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_multi_group_burst_runs_on_the_pool(executor):
    """The forwarded-regime burst splits into independent conflict groups
    and actually exercises the worker pool (group_count > 1, workers > 1),
    still matching the sequential engine's lowered stream."""
    sequential = make_flay("tofino")
    pooled = make_flay("tofino")
    fuzzer = EntryFuzzer(sequential.model, seed=1)
    warmup = []
    for table in ALL_TABLES:
        warmup.extend(fuzzer.representative_updates(table, per_action=3))
    sequential.process_batch(warmup)
    pooled.process_batch(warmup)
    burst = []
    for table in ALL_TABLES:
        burst.extend(fuzzer.insert_burst(table, 10))
    for update in burst:
        sequential.process_update(update)
    report = pooled.apply_batch(burst, workers=4, executor=executor)
    assert report.group_count > 1  # otherwise the pool was never used
    assert report.executor == executor
    assert lowered_trace(sequential) == lowered_trace(pooled)
    assert_same_result(sequential, pooled)


def test_workers_zero_auto_detects_cpu_count():
    flay = make_flay("none")
    stream = EntryFuzzer(flay.model, seed=2).update_stream(
        tables=ALL_TABLES, count=8
    )
    report = flay.apply_batch(stream, workers=0)
    assert report.workers == (os.cpu_count() or 1)


def test_flay_executor_env_var_selects_executor(monkeypatch):
    monkeypatch.setenv("FLAY_EXECUTOR", "serial")
    flay = make_flay("none")
    stream = EntryFuzzer(flay.model, seed=2).update_stream(
        tables=ALL_TABLES, count=8
    )
    report = flay.apply_batch(stream, workers=4)
    assert report.executor == "serial"


def test_value_set_updates_flow_through_batches():
    """Value-set reconfigurations coalesce (last write wins) and land in the
    engine exactly as sequential application would leave them."""
    vs_source = SOURCE.replace(
        "state start { pkt_extract(hdr.h); transition accept; }",
        """value_set<bit<8>>(4) ports;
    state start {
        pkt_extract(hdr.h);
        transition select(hdr.h.a) { ports: accept; default: accept; }
    }""",
    )
    from repro.runtime.semantics import ValueSetUpdate

    sequential = Flay(parse_program(vs_source), FlayOptions(target="none"))
    batched = Flay(parse_program(vs_source), FlayOptions(target="none"))
    fuzzer = EntryFuzzer(sequential.model, seed=4)
    updates = fuzzer.update_stream(tables=["t1"], count=6)
    mixed = [
        ValueSetUpdate("ports", (1, 2)),
        *updates[:3],
        ValueSetUpdate("ports", (7,)),
        *updates[3:],
        ValueSetUpdate("ports", (9, 10, 11)),
    ]
    for update in mixed:
        if isinstance(update, ValueSetUpdate):
            sequential.process_value_set_update(update)
        else:
            sequential.process_update(update)
    batched.apply_batch(mixed, workers=2)
    assert_same_result(sequential, batched)
    assert (
        sequential.runtime.state.value_sets == batched.runtime.state.value_sets
    )
