"""Unit tests for the batch scheduler's cache-delta merge.

The merge step folds each worker slice's private caches back into the
shared :class:`EngineContext`.  These tests pin the invariants that make
that sound: grafted substitution-memo entries stay keyed on interned
terms, merged verdict caches answer later sequential queries, counters
fold monotonically, and the merged engine is indistinguishable from one
that never batched at all.
"""

import pytest

from repro.core import Flay, FlayOptions
from repro.engine import BatchMerged, BatchScheduled, EventBus
from repro.engine.batch import conflict_components
from repro.p4.parser import parse_program
from repro.p4.printer import print_program
from repro.runtime.fuzzer import EntryFuzzer
from repro.smt import terms as T

SOURCE = """
header h_t { bit<8> a; bit<8> b; bit<8> c; bit<8> d; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action setm(bit<8> v) { meta.m = v; }
    action setn(bit<8> v) { meta.n = v; }
    action noop() { }
    table ta {
        key = { hdr.h.a: exact; }
        actions = { setm; noop; }
        default_action = noop();
    }
    table tb {
        key = { hdr.h.b: exact; }
        actions = { setn; noop; }
        default_action = noop();
    }
    apply {
        ta.apply();
        tb.apply();
        if (meta.m == 8w3) { hdr.h.c = 8w1; }
        if (meta.n == 8w7) { hdr.h.d = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""


def two_group_batch(flay, seed=0, per_table=6):
    fuzzer = EntryFuzzer(flay.model, seed=seed)
    return fuzzer.insert_burst("ta", per_table) + fuzzer.insert_burst(
        "tb", per_table
    )


@pytest.fixture()
def flay():
    return Flay(parse_program(SOURCE), FlayOptions(target="none"))


class TestPartitionIndependence:
    def test_independent_tables_get_separate_groups(self, flay):
        report = flay.apply_batch(two_group_batch(flay), workers=2)
        assert report.group_count == 2
        tables = {g.tables for g in report.groups}
        assert tables == {("C.ta",), ("C.tb",)}

    def test_components_are_cached_on_the_context(self, flay):
        flay.apply_batch(two_group_batch(flay), workers=2)
        cached = flay.runtime.ctx.batch_components
        assert cached is not None
        flay.apply_batch(two_group_batch(flay, seed=1), workers=2)
        assert flay.runtime.ctx.batch_components is cached

    def test_strict_mode_only_merges_further(self, flay):
        model = flay.model
        loose = conflict_components(model)
        strict = conflict_components(
            model, flay.program, flay.env, strict=True
        )
        loose_groups = {}
        for name, root in loose.items():
            loose_groups.setdefault(root, set()).add(name)
        # Every loose component sits wholly inside one strict component:
        # the syntactic graph can over-merge, never split a semantic group.
        for members in loose_groups.values():
            assert len({strict[m] for m in members}) == 1


class TestCacheMerge:
    def test_substitution_memo_entries_survive_and_stay_interned(self, flay):
        flay.apply_batch(two_group_batch(flay), workers=2)
        substitution = flay.runtime.substitution
        # Every grafted memo value must be the interned representative of
        # its structure — rebuilding it through the factory is an identity.
        for term in substitution._memo.values():
            key = (term.op, term.args, term.width, term.payload)
            assert T.DEFAULT_FACTORY._table.get(key) is term

    def test_memo_index_covers_grafted_entries(self, flay):
        flay.apply_batch(two_group_batch(flay), workers=2)
        substitution = flay.runtime.substitution
        indexed = set()
        for ids in substitution._index.values():
            indexed |= ids
        # Entries that depend on at least one variable must be reachable
        # through the index, or a later set_many could miss invalidating
        # them.  (Closed terms legitimately live outside the index.)
        from repro.smt.substitute import variable_dependencies

        for term_id, term in substitution._memo.items():
            if variable_dependencies(term):
                assert term_id in indexed

    def test_verdict_caches_land_in_shared_dicts(self, flay):
        qe = flay.runtime.engine
        before_exec = dict(qe._exec_cache)
        flay.apply_batch(two_group_batch(flay), workers=2)
        assert isinstance(qe._exec_cache, dict)  # still the plain shared dict
        assert isinstance(qe.solver._results, dict)
        # The batch computed fresh executability queries somewhere.
        assert len(qe._exec_cache) >= len(before_exec)

    def test_counters_fold_monotonically(self, flay):
        before = [c.snapshot() for c in flay.runtime.ctx.cache_counters()]
        flay.apply_batch(two_group_batch(flay), workers=2)
        for counter, snap in zip(flay.runtime.ctx.cache_counters(), before):
            assert counter.hits >= snap.hits
            assert counter.misses >= snap.misses

    def test_merged_engine_behaves_like_unbatched_engine_afterwards(self, flay):
        """The real invariant: after a merge, sequential updates behave as
        if the batch had been applied sequentially all along."""
        reference = Flay(parse_program(SOURCE), FlayOptions(target="none"))
        batch = two_group_batch(flay)
        flay.apply_batch(batch, workers=2)
        for update in batch:
            reference.process_update(update)
        tail = EntryFuzzer(flay.model, seed=9).update_stream(
            tables=["ta", "tb"], count=20
        )
        for update in tail:
            a = flay.process_update(update)
            b = reference.process_update(update)
            assert a.forwarded == b.forwarded
            assert a.changed == b.changed
        assert flay.runtime.point_verdicts == reference.runtime.point_verdicts
        assert flay.specialized_source() == print_program(
            reference.specialized_program
        )


class TestEvents:
    def test_schedule_and_merge_events_emitted(self):
        bus = EventBus()
        log = bus.attach_log()
        flay = Flay(parse_program(SOURCE), FlayOptions(target="none"), bus=bus)
        batch = two_group_batch(flay)
        flay.apply_batch(batch, workers=4, executor="thread")
        (scheduled,) = log.of_type(BatchScheduled)
        assert scheduled.update_count == len(batch)
        assert scheduled.coalesced_count == len(batch)  # pure inserts
        assert scheduled.group_count == 2
        assert scheduled.workers == 4
        assert scheduled.executor == "thread"
        (merged,) = log.of_type(BatchMerged)
        assert merged.group_count == 2
        assert merged.merged_memo_entries > 0

    def test_process_mode_skips_memo_transport(self):
        """The id()-keyed substitution memo delta deliberately stays home
        in process mode (child object ids are meaningless in the parent);
        the event records 0 grafted entries and output is unaffected."""
        bus = EventBus()
        log = bus.attach_log()
        flay = Flay(parse_program(SOURCE), FlayOptions(target="none"), bus=bus)
        batch = two_group_batch(flay)
        flay.apply_batch(batch, workers=4, executor="process")
        (scheduled,) = log.of_type(BatchScheduled)
        assert scheduled.executor == "process"
        (merged,) = log.of_type(BatchMerged)
        assert merged.group_count == 2
        assert merged.merged_memo_entries == 0


class TestMergeAccounting:
    """The double-counting tripwire: per-worker solver/gate stat deltas are
    absorbed into the shared stats exactly once each, so the per-worker
    sums must equal the shared delta over the merge — off by even one
    means a slice was absorbed twice (or dropped)."""

    def test_event_rejects_solver_double_count(self):
        with pytest.raises(ValueError, match="double-counted solver"):
            BatchMerged(
                group_count=2,
                merged_memo_entries=0,
                merged_verdict_entries=0,
                elapsed_ms=1.0,
                worker_solver_queries=7,
                merged_solver_queries=14,  # a slice absorbed twice
            )

    def test_event_rejects_gate_double_count(self):
        with pytest.raises(ValueError, match="double-counted gate"):
            BatchMerged(
                group_count=2,
                merged_memo_entries=0,
                merged_verdict_entries=0,
                elapsed_ms=1.0,
                worker_gate_screens=3,
                merged_gate_screens=6,
            )

    def test_event_accepts_balanced_accounting(self):
        merged = BatchMerged(
            group_count=2,
            merged_memo_entries=5,
            merged_verdict_entries=3,
            elapsed_ms=1.0,
            worker_solver_queries=7,
            merged_solver_queries=7,
            worker_gate_screens=4,
            merged_gate_screens=4,
        )
        assert merged.worker_solver_queries == merged.merged_solver_queries

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_real_batches_emit_balanced_accounting(self, executor):
        """Across all three executors, the BatchMerged event constructs
        (its __post_init__ would raise on any imbalance) and reports the
        same worker totals the sequential accounting implies."""
        bus = EventBus()
        log = bus.attach_log()
        flay = Flay(parse_program(SOURCE), FlayOptions(target="none"), bus=bus)
        flay.apply_batch(
            two_group_batch(flay), workers=2, executor=executor
        )
        (merged,) = log.of_type(BatchMerged)
        assert merged.worker_solver_queries == merged.merged_solver_queries
        assert merged.worker_gate_screens == merged.merged_gate_screens
        # The batch did real solver/gate work in the workers.
        assert merged.worker_solver_queries > 0 or merged.worker_gate_screens > 0
