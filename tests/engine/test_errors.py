"""The structured error layer: one FlayError root, stages, eager validation."""

import pytest

from repro.__main__ import main
from repro.analysis.model import UnknownTableError
from repro.analysis.symexec import AnalysisError
from repro.core import Flay, FlayOptions
from repro.errors import FlayError, OptionsError, SourcePos
from repro.p4.errors import ParseError, TypeCheckError
from repro.p4.parser import parse_program
from repro.runtime.config import ConfigError, loads
from repro.runtime.entries import EntryError
from repro.smt.terms import SortError
from repro.targets.base import UnknownTargetError, available_targets
from repro.targets.bmv2.interpreter import InterpreterError
from repro.targets.tofino.resources import ResourceError

SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action noop() { }
    table t {
        key = { hdr.h.f: exact; }
        actions = { noop; }
        default_action = noop();
    }
    apply { t.apply(); }
}
Pipeline(P(), C()) main;
"""


class TestHierarchy:
    def test_every_subsystem_error_roots_at_flay_error(self):
        for exc_type in (
            ParseError,
            TypeCheckError,
            AnalysisError,
            EntryError,
            ConfigError,
            InterpreterError,
            SortError,
            ResourceError,
            UnknownTableError,
            UnknownTargetError,
            OptionsError,
        ):
            assert issubclass(exc_type, FlayError), exc_type

    def test_builtin_bases_survive_for_legacy_catchers(self):
        assert issubclass(EntryError, ValueError)
        assert issubclass(ConfigError, ValueError)
        assert issubclass(UnknownTableError, KeyError)
        assert issubclass(SortError, TypeError)
        assert issubclass(InterpreterError, RuntimeError)
        assert issubclass(ResourceError, RuntimeError)

    def test_stage_and_pos_are_structured(self):
        exc = ParseError("unexpected token", SourcePos(3, 7))
        assert exc.stage == "parse"
        assert exc.pos == SourcePos(3, 7)
        assert str(exc) == "3:7: unexpected token"
        assert exc.describe() == "[parse] 3:7: unexpected token"

    def test_key_error_subclass_renders_without_quoting(self):
        exc = UnknownTableError("no table named 'acl'")
        assert str(exc) == "no table named 'acl'"
        assert exc.describe().startswith("[runtime]")


class TestEagerValidation:
    def test_unknown_target_fails_at_construction(self):
        program = parse_program(SOURCE)
        with pytest.raises(UnknownTargetError) as err:
            Flay(program, FlayOptions(target="p4c-xdp"))
        message = str(err.value)
        for name in available_targets():
            assert name in message

    def test_unknown_target_is_a_value_error(self):
        with pytest.raises(ValueError):
            Flay(parse_program(SOURCE), FlayOptions(target="nope"))

    def test_bad_effort_is_an_options_error(self):
        with pytest.raises(OptionsError) as err:
            Flay(parse_program(SOURCE), FlayOptions(target="none", effort="max"))
        assert "effort" in str(err.value)

    def test_all_registered_targets_resolve(self):
        from repro.targets.base import Target, create_target

        for name in available_targets():
            assert isinstance(create_target(name), Target)


class TestUserReachablePaths:
    def test_model_lookup_raises_typed_key_error(self):
        flay = Flay(parse_program(SOURCE), FlayOptions(target="none"))
        with pytest.raises(UnknownTableError):
            flay.model.table("no_such_table")
        with pytest.raises(UnknownTableError):
            flay.model.value_set("no_such_set")

    def test_config_errors_are_flay_errors(self):
        with pytest.raises(FlayError):
            loads("not json")
        with pytest.raises(ConfigError):
            loads('{"unknown_section": {}}')

    def test_missing_config_file_is_a_config_error(self, tmp_path):
        from repro.runtime.config import load

        with pytest.raises(ConfigError) as err:
            load(str(tmp_path / "does-not-exist.json"))
        assert "does-not-exist" in str(err.value)

    def test_cli_reports_flay_errors_as_exit_2(self, capsys):
        assert main(["compile", "corpus:fig3", "--target", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "bogus" in err

    def test_cli_specialize_validates_target_eagerly(self, capsys):
        assert main(["specialize", "corpus:fig3", "--target", "bogus"]) == 2
        assert "registered backends" in capsys.readouterr().err
