"""The engine's event stream: pass timings, cache activity, update outcomes."""

from repro.core import Flay, FlayOptions
from repro.engine import (
    CacheActivity,
    Engine,
    EngineOptions,
    EventBus,
    PassFinished,
    PassStarted,
    TargetCompiled,
    UpdateLowered,
    UpdateProcessed,
)
from repro.p4.parser import parse_program
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import INSERT, Update

SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply { t.apply(); }
}
Pipeline(P(), C()) main;
"""


def _engine(bus=None, target="none"):
    return Engine(
        parse_program(SOURCE), EngineOptions(target=target), bus=bus
    )


def test_cold_pipeline_emits_pass_events_in_order():
    bus = EventBus()
    log = bus.attach_log()
    _engine(bus=bus)
    started = [e.pass_name for e in log.of_type(PassStarted)]
    finished = [e.pass_name for e in log.of_type(PassFinished)]
    expected = [
        "parse", "typecheck", "prune", "analyze", "encode", "specialize", "lower",
    ]
    assert started == expected
    assert finished == expected
    assert all(e.stage == "cold" for e in log.of_type(PassStarted))
    assert all(e.elapsed_ms >= 0 for e in log.of_type(PassFinished))


def test_forwarded_update_emits_outcome_and_cache_activity():
    bus = EventBus()
    log = bus.attach_log()
    engine = _engine(bus=bus)
    fuzzer = EntryFuzzer(engine.model, seed=3)
    log.clear()
    decision = engine.process_update(
        Update("t", INSERT, fuzzer.entry("t", action="noop"))
    )
    outcomes = log.of_type(UpdateProcessed)
    assert len(outcomes) == 1
    assert outcomes[0].kind == "update"
    assert outcomes[0].forwarded == decision.forwarded
    assert outcomes[0].recompiled == decision.recompiled
    assert outcomes[0].update_count == 1
    # Warm passes run under the warm stage.
    warm_passes = [e for e in log.of_type(PassStarted) if e.stage == "warm"]
    assert [e.pass_name for e in warm_passes] == [
        "apply-updates",
        "reverdict-points",
        "reverdict-tables",
        "respecialize",
        "lower",
    ]
    # The warm run consulted at least one cross-update cache.
    assert log.of_type(CacheActivity)


def test_batch_outcome_reports_update_count():
    bus = EventBus()
    log = bus.attach_log()
    engine = _engine(bus=bus)
    fuzzer = EntryFuzzer(engine.model, seed=4)
    log.clear()
    engine.process_batch(fuzzer.insert_burst("t", 10, action="set"))
    outcomes = log.of_type(UpdateProcessed)
    assert len(outcomes) == 1
    assert outcomes[0].kind == "batch"
    assert outcomes[0].update_count == 10


def test_target_events_cold_compile_and_forward_lowering():
    bus = EventBus()
    log = bus.attach_log()
    engine = _engine(bus=bus, target="tofino")
    assert log.count(TargetCompiled) == 1
    assert log.of_type(TargetCompiled)[0].target == "tofino"
    fuzzer = EntryFuzzer(engine.model, seed=5)
    decision = engine.process_update(
        Update("t", INSERT, fuzzer.entry("t", action="noop"))
    )
    if decision.forwarded:
        lowered = log.of_type(UpdateLowered)
        assert lowered and lowered[0].target == "tofino"
        assert engine.lowered_updates


def test_silent_bus_stays_inactive():
    engine = _engine()
    assert not engine.events.active
    fuzzer = EntryFuzzer(engine.model, seed=6)
    engine.process_update(Update("t", INSERT, fuzzer.entry("t")))
    # Subscribing later starts the stream without reconstructing anything.
    log = engine.events.attach_log()
    assert engine.events.active
    engine.process_update(Update("t", INSERT, fuzzer.entry("t")))
    assert log.count(UpdateProcessed) == 1


def test_facade_accepts_bus_and_log_summarizes():
    bus = EventBus()
    log = bus.attach_log()
    flay = Flay(parse_program(SOURCE), FlayOptions(target="none"), bus=bus)
    assert flay.events is bus
    assert len(log) > 0
    summary = log.summary()
    assert "PassStarted" in summary and "PassFinished" in summary
