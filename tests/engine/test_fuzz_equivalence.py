"""Fuzzer-driven equivalence: the staged engine == a from-scratch pipeline.

The pass-pipeline refactor must be behavior-preserving: across random
update streams, the warm path's verdicts, specialized source, and
forward/recompile decisions must be bit-identical to (a) a cold pipeline
rebuilt from scratch over the same control-plane state, and (b) the legacy
``IncrementalSpecializer`` entry point driving the same engine.
"""

import pytest

from repro.core import Flay, FlayOptions
from repro.core.incremental import IncrementalSpecializer
from repro.engine import Engine, EngineOptions
from repro.p4.parser import parse_program
from repro.p4.printer import print_program
from repro.runtime.fuzzer import EntryFuzzer

SOURCE = """
header h_t { bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    action set_n(bit<8> v) { meta.n = v; }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { set_n; noop; }
        default_action = noop();
    }
    apply {
        t1.apply();
        if (meta.m == 8w3) { t2.apply(); }
        if (meta.n == 8w7) { meta.m = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""


def _scratch(updates):
    """A cold pipeline over the same control-plane state."""
    engine = Engine(parse_program(SOURCE), EngineOptions(target="none"))
    for update in updates:
        engine.ctx.state.apply_update(update)
    engine._encode_initial()
    engine._evaluate_all_points()
    specialized, _ = engine.ctx.specializer.specialize(
        engine.point_verdicts, engine.table_verdicts
    )
    return engine, specialized


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_warm_stream_matches_cold_rebuild(seed):
    flay = Flay(parse_program(SOURCE), FlayOptions(target="none"))
    fuzzer = EntryFuzzer(flay.model, seed=seed)
    stream = fuzzer.update_stream(tables=["t1", "t2"], count=40)
    applied = []
    for step, update in enumerate(stream):
        flay.process_update(update)
        applied.append(update)
        if step % 13 == 12:
            scratch, specialized = _scratch(applied)
            assert flay.runtime.point_verdicts == scratch.point_verdicts
            assert flay.runtime.table_verdicts == scratch.table_verdicts
            assert flay.specialized_source() == print_program(specialized)
    scratch, specialized = _scratch(applied)
    assert flay.runtime.point_verdicts == scratch.point_verdicts
    assert flay.runtime.table_verdicts == scratch.table_verdicts
    assert flay.specialized_source() == print_program(specialized)


@pytest.mark.parametrize("seed", [7, 8])
def test_facade_and_legacy_runtime_make_identical_decisions(seed):
    """Flay-facade engine and legacy IncrementalSpecializer, same stream →
    identical forward/recompile decisions, changed lists, and verdicts."""
    program_a = parse_program(SOURCE)
    program_b = parse_program(SOURCE)
    flay = Flay(program_a, FlayOptions(target="none"))
    legacy = IncrementalSpecializer(program_b)
    fuzzer = EntryFuzzer(flay.model, seed=seed)
    stream = fuzzer.update_stream(tables=["t1", "t2"], count=30)
    for update in stream:
        a = flay.process_update(update)
        b = legacy.process_update(update)
        assert a.forwarded == b.forwarded
        assert a.recompiled == b.recompiled
        assert a.changed == b.changed
        assert a.affected_points == b.affected_points
        assert a.overapproximated == b.overapproximated
    assert flay.runtime.point_verdicts == legacy.point_verdicts
    assert flay.runtime.table_verdicts == legacy.table_verdicts
    assert flay.specialized_source() == print_program(legacy.specialized_program)
    assert flay.runtime.forwarded_count == legacy.forwarded_count
    assert flay.runtime.recompiled_count == legacy.recompiled_count


def test_batch_stream_matches_cold_rebuild():
    flay = Flay(parse_program(SOURCE), FlayOptions(target="none"))
    fuzzer = EntryFuzzer(flay.model, seed=21)
    stream = fuzzer.update_stream(tables=["t1", "t2"], count=60)
    # Replay in three batches of 20.
    for start in range(0, 60, 20):
        flay.process_batch(stream[start:start + 20])
    scratch, specialized = _scratch(stream)
    assert flay.runtime.point_verdicts == scratch.point_verdicts
    assert flay.runtime.table_verdicts == scratch.table_verdicts
    assert flay.specialized_source() == print_program(specialized)


@pytest.mark.parametrize("seed", [5, 17])
def test_incremental_session_matches_replay_baseline(seed):
    """The persistent assumption-probing solver session must be invisible:
    across a fuzzed stream, every decision, verdict, and the specialized
    source match an engine running the per-query cone-replay baseline."""
    session_flay = Flay(
        parse_program(SOURCE), FlayOptions(target="none", incremental_solver=True)
    )
    replay_flay = Flay(
        parse_program(SOURCE), FlayOptions(target="none", incremental_solver=False)
    )
    fuzzer = EntryFuzzer(session_flay.model, seed=seed)
    stream = fuzzer.update_stream(tables=["t1", "t2"], count=40)
    for update in stream:
        a = session_flay.process_update(update)
        b = replay_flay.process_update(update)
        assert a.forwarded == b.forwarded
        assert a.recompiled == b.recompiled
        assert a.changed == b.changed
        assert a.affected_points == b.affected_points
    assert session_flay.runtime.point_verdicts == replay_flay.runtime.point_verdicts
    assert session_flay.runtime.table_verdicts == replay_flay.runtime.table_verdicts
    assert session_flay.specialized_source() == replay_flay.specialized_source()
    # Both engines reached the SAT layer, and only the session solved
    # incrementally (probes show up in its search counters).
    assert (
        session_flay.solver_stats().probes == replay_flay.solver_stats().probes
    )


def test_update_stream_replays_cleanly():
    """Every MODIFY/DELETE in a fuzzed stream targets a live entry."""
    flay = Flay(parse_program(SOURCE), FlayOptions(target="none"))
    fuzzer = EntryFuzzer(flay.model, seed=33)
    stream = fuzzer.update_stream(tables=["t1"], count=80)
    ops = {u.op for u in stream}
    assert ops == {"insert", "modify", "delete"}
    for update in stream:  # EntryError here would fail the test
        flay.process_update(update)
