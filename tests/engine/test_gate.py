"""Unit tests for the tiered verdict gate (engine/gate.py).

The end-to-end speed claim lives in benchmarks/test_fdd_gate.py and the
equivalence claim in test_gate_differential.py; this module pins the
mechanics — counter bookkeeping, witness-record lifecycle, the tier
ordering, and the batch-worker fork/absorb protocol.
"""

from repro.core import Flay, FlayOptions
from repro.engine.events import EventBus, GateActivity
from repro.engine.gate import GateStats, WitnessRecord, _ZeroDefault
from repro.p4.parser import parse_program
from repro.runtime.entries import ExactMatch, TableEntry
from repro.runtime.semantics import DELETE, INSERT, Update

SOURCE = """
header h_t { bit<8> a; bit<8> b; bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action setn(bit<8> v) { meta.n = v; }
    action noop() { }
    table ta {
        key = { hdr.h.a: exact; }
        actions = { setn; noop; }
        default_action = noop();
    }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply {
        ta.apply();
        t1.apply();
        if (meta.n == 8w7) { hdr.h.g = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""


def make_flay(**options):
    return Flay(parse_program(SOURCE), FlayOptions(target="none", **options))


def insert_ta(key, arg, action="setn"):
    args = () if action == "noop" else (arg,)
    return Update("C.ta", INSERT, TableEntry((ExactMatch(key),), action, args, 0))


# ---------------------------------------------------------------------------
# GateStats bookkeeping
# ---------------------------------------------------------------------------


class TestGateStats:
    def test_solver_free_sums_non_probe_tiers(self):
        stats = GateStats(
            screened=10,
            witness_hits=4,
            exec_cache_hits=2,
            interval_decided=1,
            witness_evals=1,
            solver_fallbacks=2,
        )
        assert stats.solver_free == 8

    def test_snapshot_is_independent(self):
        stats = GateStats(screened=3)
        frozen = stats.snapshot()
        stats.screened = 9
        assert frozen.screened == 3

    def test_since_subtracts_fieldwise(self):
        before = GateStats(screened=3, harvested=1)
        after = GateStats(screened=10, harvested=4, witness_hits=2)
        delta = after.since(before)
        assert delta.screened == 7
        assert delta.harvested == 3
        assert delta.witness_hits == 2

    def test_absorb_adds_fieldwise(self):
        total = GateStats(screened=5, solver_fallbacks=1)
        total.absorb(GateStats(screened=2, solver_fallbacks=3, harvested=1))
        assert total.screened == 7
        assert total.solver_fallbacks == 4
        assert total.harvested == 1

    def test_describe_mentions_every_tier(self):
        text = GateStats(screened=4, witness_hits=2).describe()
        assert "screens: 4" in text
        assert "witness 2" in text
        assert "solver-free" in text
        assert "fdd:" in text

    def test_describe_survives_zero_screens(self):
        assert "0.0%" in GateStats().describe()


# ---------------------------------------------------------------------------
# Wiring: option flag, stats surface, event emission
# ---------------------------------------------------------------------------


class TestWiring:
    def test_gate_attached_by_default(self):
        flay = make_flay()
        assert flay.runtime.gate is not None
        assert isinstance(flay.gate_stats(), GateStats)
        # Every table got a diagram.
        for state in flay.runtime.ctx.state.tables.values():
            assert state.fdd is not None

    def test_gate_absent_when_disabled(self):
        flay = make_flay(fdd_gate=False)
        assert flay.runtime.gate is None
        assert flay.gate_stats() is None

    def test_gate_activity_event_emitted(self):
        bus = EventBus()
        seen = []
        bus.subscribe(
            lambda event: seen.append(event)
            if isinstance(event, GateActivity)
            else None
        )
        flay = Flay(parse_program(SOURCE), FlayOptions(target="none"), bus=bus)
        flay.process_update(insert_ta(1, 7))
        assert seen, "warm run should emit a GateActivity delta"
        assert seen[-1].screened > 0


# ---------------------------------------------------------------------------
# Witness-record lifecycle on the real warm path
# ---------------------------------------------------------------------------


class TestWitnessLifecycle:
    def test_maybe_point_harvests_witnesses(self):
        flay = make_flay()
        # setn(7) reachable iff h.a == 1 → the n==7 guard goes MAYBE and
        # the probe pair's two models become the point's witnesses.
        flay.process_update(insert_ta(1, 7))
        gate = flay.runtime.gate
        stats = flay.gate_stats()
        assert stats.harvested >= 1
        records = gate._records.map
        assert records, "a MAYBE verdict should leave a witness record"
        # Both record flavours appear: the MAYBE guard and at least one
        # non-constant value point (distinguishing-pair harvest).
        assert any(r.verdict.executability == "maybe" for r in records.values())
        assert any(
            r.verdict.executability is None and not r.verdict.is_constant
            for r in records.values()
        )
        for pid, record in records.items():
            # A record always certifies an existential fact.
            assert (
                record.verdict.executability == "maybe"
                or not record.verdict.is_constant
            )
            # The cached key values agree with re-evaluating the models.
            assert record.pos_keys == gate._key_values(pid, record.pos_model)
            assert record.neg_keys == gate._key_values(pid, record.neg_model)

    def test_disjoint_insert_replays_verdict_from_witnesses(self):
        flay = make_flay()
        flay.process_update(insert_ta(1, 7))
        before = flay.gate_stats()
        # Keys 200/201 are disjoint from both witnesses' key values, so
        # the fingerprints hold and the stored MAYBE is replayed without
        # a solver probe.
        flay.process_update(insert_ta(200, 3))
        flay.process_update(insert_ta(201, 4))
        delta = flay.gate_stats().since(before)
        assert delta.witness_hits >= 2
        assert delta.solver_fallbacks == 0

    def test_touching_a_witness_key_invalidates_the_record(self):
        flay = make_flay()
        update = insert_ta(1, 7)
        flay.process_update(update)
        before = flay.gate_stats()
        # Deleting the entry changes the FDD leaf at the positive
        # witness's key value → fingerprint miss → full re-decide, and
        # the now-NEVER guard drops its record.
        flay.process_update(Update("C.ta", DELETE, update.entry))
        delta = flay.gate_stats().since(before)
        assert delta.witness_hits == 0
        verdicts = flay.runtime.ctx.point_verdicts
        guard = next(
            v for v in verdicts.values()
            if v.kind == "if" and v.executability is not None
        )
        assert guard.executability == "never"

    def test_gated_verdicts_match_ungated(self):
        gated, ungated = make_flay(), make_flay(fdd_gate=False)
        for update in [insert_ta(1, 7), insert_ta(9, 2), insert_ta(200, 7)]:
            gated.process_update(update)
            ungated.process_update(update)
        a = gated.runtime.ctx.point_verdicts
        b = ungated.runtime.ctx.point_verdicts
        assert set(a) == set(b)
        for pid in a:
            assert a[pid] == b[pid], pid
        assert gated.specialized_source() == ungated.specialized_source()


# ---------------------------------------------------------------------------
# fork_slice / absorb_fork (the batch-worker protocol)
# ---------------------------------------------------------------------------


class TestForkAbsorb:
    def make_gate(self):
        flay = make_flay()
        flay.process_update(insert_ta(1, 7))
        return flay.runtime.gate

    def dummy_record(self, base):
        return WitnessRecord(
            verdict=base.verdict,
            term=base.term,
            pos_model=base.pos_model,
            neg_model=base.neg_model,
            pos_keys=base.pos_keys,
            neg_keys=base.neg_keys,
            fp_pos=base.fp_pos,
            fp_neg=base.fp_neg,
        )

    def test_fork_shares_diagrams_and_overlays_records(self):
        gate = self.make_gate()
        fork = gate.fork_slice()
        assert fork.state is gate.state
        assert fork._deps is gate._deps
        pid, record = next(iter(gate._records.map.items()))
        # Reads fall through to the base...
        assert fork._records.get(pid) is record
        # ...writes stay in the overlay.
        replacement = self.dummy_record(record)
        fork._records.set(pid, replacement)
        assert fork._records.get(pid) is replacement
        assert gate._records.get(pid) is record

    def test_fork_drop_is_a_tombstone_not_a_base_mutation(self):
        gate = self.make_gate()
        fork = gate.fork_slice()
        pid = next(iter(gate._records.map))
        fork._records.drop(pid)
        assert fork._records.get(pid) is None
        assert gate._records.get(pid) is not None

    def test_absorb_fork_merges_records_and_counters(self):
        gate = self.make_gate()
        fork = gate.fork_slice()
        fork.stats.screened = 5
        fork.stats.witness_hits = 3
        pid, record = next(iter(gate._records.map.items()))
        replacement = self.dummy_record(record)
        fork._records.set(pid, replacement)
        fork._records.set("synthetic::pid", replacement)
        before = gate.stats.snapshot()
        grafted = gate.absorb_fork(fork)
        assert grafted == 2
        assert gate._records.get(pid) is replacement
        assert gate._records.get("synthetic::pid") is replacement
        delta = gate.stats.since(before)
        assert delta.screened == 5
        assert delta.witness_hits == 3
        gate._records.drop("synthetic::pid")

    def test_absorb_fork_applies_tombstones(self):
        gate = self.make_gate()
        fork = gate.fork_slice()
        pid = next(iter(gate._records.map))
        fork._records.drop(pid)
        gate.absorb_fork(fork)
        assert gate._records.get(pid) is None


# ---------------------------------------------------------------------------
# _ZeroDefault
# ---------------------------------------------------------------------------


def test_zero_default_reads_absent_variables_as_zero():
    model = _ZeroDefault({"x": 5})
    assert model["x"] == 5
    assert model["never_assigned"] == 0


# ---------------------------------------------------------------------------
# Hunt retirement → tier-2b pool harvest (the monster-term escape hatch)
# ---------------------------------------------------------------------------


class TestHuntRetirement:
    def retire_a_value_point(self, flay):
        """Warm up, pick a non-constant value point, and hunt-retire it."""
        flay.process_update(insert_ta(1, 7))
        flay.process_update(insert_ta(2, 9))  # setn's param is now non-constant
        gate = flay.runtime.gate
        pid = next(
            pid
            for pid, r in gate._records.map.items()
            if r.verdict.executability is None
            and not r.verdict.is_constant
            and "C.ta" in gate._deps[pid][0]
        )
        gate._records.drop(pid)
        gate._hunt_failures[pid] = gate.HUNT_RETRY_LIMIT
        gate._lazy_attempts.pop(pid, None)
        return gate, pid

    def test_retired_point_becomes_screenable_via_pool_harvest(self):
        """A point that exhausted HUNT_RETRY_LIMIT must not pay the slow
        path on every subsequent re-verdict: the next warm touch borrows
        pooled tier-2b witness models, re-stores a record, and later
        re-verdicts replay from the fingerprint again."""
        flay = make_flay()
        gate, pid = self.retire_a_value_point(flay)
        before = flay.gate_stats()
        flay.process_update(insert_ta(3, 11))  # re-verdicts the retired point
        delta = flay.gate_stats().since(before)
        assert delta.lazy_harvests >= 1
        record = gate._records.get(pid)
        assert record is not None, "pool harvest should restore the record"
        # The borrowed pair is a real non-constancy certificate.
        import repro.smt.terms as T

        assert T.evaluate(record.term, record.pos_model) != T.evaluate(
            record.term, record.neg_model
        )
        # The point stays hunt-retired (no probe-pattern hunts resume) …
        assert gate._hunt_failures.get(pid, 0) >= gate.HUNT_RETRY_LIMIT
        # … yet the *next* disjoint insert screens it from the fingerprint.
        before = flay.gate_stats()
        flay.process_update(insert_ta(200, 7))
        assert flay.gate_stats().since(before).witness_hits >= 1

    def test_lazy_attempts_are_gated_per_pool_signature(self):
        """A failed borrow is not retried until the pool or a dependency
        table actually changes (the once-per-growth signature gate)."""
        flay = make_flay()
        gate, pid = self.retire_a_value_point(flay)
        # Empty the pool so the borrow must fail.
        gate._pool.clear()
        gate._seed_attempts.clear()
        point = flay.runtime.ctx.model.points[pid]
        term = gate._records.get(pid).term if gate._records.get(pid) else None
        assert term is None  # record was dropped by retirement
        qe = flay.runtime.ctx.query_engine
        # Use a term the pool's zero-default models cannot distinguish.
        import repro.smt.terms as T

        constantish = T.data_var("tgate_probe", 8)
        qe.use_solver = False  # block entry-directed seeding
        assert gate._pool_pair(pid, constantish, False, qe) is None
        failures = gate._lazy_failures.get(pid, 0)
        attempts = dict(gate._lazy_attempts)
        # Same signature → the retry is refused without another attempt.
        assert gate._pool_pair(pid, constantish, False, qe) is None
        assert gate._lazy_failures.get(pid, 0) == failures
        assert dict(gate._lazy_attempts) == attempts
