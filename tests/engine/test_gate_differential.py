"""Differential safety net for the verdict gate: gated == ``--no-fdd-gate``.

The gate's contract is that every tier returns exactly what the ungated
path would return — tiers 1/3 *are* the ungated decision layers, and the
witness tiers only short-circuit facts two concrete models prove.  These
tests pin that contract the same way the batch scheduler's differential
suite pins batching: fuzzer streams, every target backend, sequential
and batched application, and byte-identical output either way.

CI runs this module four times — ``FLAY_FDD_GATE`` ∈ {0, 1} ×
``FLAY_BATCH_WORKERS`` ∈ {1, 4}; the env vars parameterize the
worker-count-invariance regime (the explicit gated-vs-ungated tests
construct both engines regardless).
"""

import os
import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import Flay, FlayOptions
from repro.p4.parser import parse_program
from repro.runtime.fuzzer import EntryFuzzer

TARGETS = ("tofino", "tofino-incremental", "bmv2")

#: CI matrix axes.
ENV_WORKERS = int(os.environ.get("FLAY_BATCH_WORKERS", "2"))
ENV_GATE = os.environ.get("FLAY_FDD_GATE", "1") != "0"

SOURCE = """
header h_t { bit<8> a; bit<8> b; bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action setn(bit<8> v) { meta.n = v; }
    action noop() { }
    table ta {
        key = { hdr.h.a: exact; }
        actions = { setn; noop; }
        default_action = noop();
    }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply {
        ta.apply();
        t1.apply();
        if (meta.m == 8w3) { t2.apply(); }
        if (meta.n == 8w7) { hdr.h.g = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""

ALL_TABLES = ["ta", "t1", "t2"]


def make_flay(target, gate):
    return Flay(parse_program(SOURCE), FlayOptions(target=target, fdd_gate=gate))


def chunk(stream, seed):
    """Split a stream into random-size batches (1..12), seeded."""
    rng = random.Random(seed * 7919 + 13)
    batches, i = [], 0
    while i < len(stream):
        size = rng.randint(1, 12)
        batches.append(stream[i : i + size])
        i += size
    return batches


def final_state(flay):
    return {
        name: table.entries()
        for name, table in flay.runtime.state.tables.items()
    }


def lowered_trace(flay):
    return [
        (lowered.target, lowered.table, lowered.update)
        for lowered in flay.runtime.lowered_updates
    ]


def assert_same_result(a, b):
    assert a.runtime.point_verdicts == b.runtime.point_verdicts
    assert a.runtime.table_verdicts == b.runtime.table_verdicts
    assert a.specialized_source() == b.specialized_source()
    assert final_state(a) == final_state(b)


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("seed", [0, 5, 11])
def test_sequential_stream_gated_equals_ungated(target, seed):
    """One-at-a-time application of a mixed stream: verdicts, source,
    state, and the lowered write sequence are identical with the gate on
    and off — and the gate actually engaged (non-vacuous)."""
    gated = make_flay(target, True)
    ungated = make_flay(target, False)
    stream = EntryFuzzer(gated.model, seed=seed).update_stream(
        tables=ALL_TABLES, count=50, modify_fraction=0.3, delete_fraction=0.2
    )
    for update in stream:
        a = gated.process_update(update)
        b = ungated.process_update(update)
        assert a.forwarded == b.forwarded
    assert_same_result(gated, ungated)
    assert lowered_trace(gated) == lowered_trace(ungated)
    assert gated.gate_stats().screened > 0
    assert ungated.gate_stats() is None


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("seed", [2, 9])
def test_batched_stream_gated_equals_ungated(target, seed):
    """The batch scheduler path: the forked/absorbed worker gates leave
    the same output the ungated workers do."""
    gated = make_flay(target, True)
    ungated = make_flay(target, False)
    stream = EntryFuzzer(gated.model, seed=seed).update_stream(
        tables=ALL_TABLES, count=50, modify_fraction=0.25, delete_fraction=0.15
    )
    for batch in chunk(stream, seed):
        ra = gated.apply_batch(batch, workers=ENV_WORKERS)
        rb = ungated.apply_batch(batch, workers=ENV_WORKERS)
        assert ra.changed == rb.changed
        assert ra.recompiled == rb.recompiled
    assert_same_result(gated, ungated)
    assert lowered_trace(gated) == lowered_trace(ungated)


@pytest.mark.parametrize("seed", [3, 8])
def test_output_invariant_across_worker_counts(seed):
    """workers=1, 2, 4 under the env-selected gate flag (the CI matrix
    crosses this with FLAY_FDD_GATE=0/1): byte-identical everything."""
    engines = {w: make_flay("tofino", ENV_GATE) for w in (1, 2, 4)}
    stream = EntryFuzzer(engines[1].model, seed=seed).update_stream(
        tables=ALL_TABLES, count=60, modify_fraction=0.25, delete_fraction=0.15
    )
    for workers, flay in engines.items():
        for batch in chunk(stream, seed):
            flay.apply_batch(batch, workers=workers)
    baseline = engines[1]
    for workers, flay in engines.items():
        if workers == 1:
            continue
        assert_same_result(baseline, flay)
        assert lowered_trace(baseline) == lowered_trace(flay)


def test_witness_replay_regime_stays_identical():
    """The regime the gate accelerates — saturating warm-up, then a
    disjoint insert burst that the gate answers almost entirely from
    witness fingerprints — still produces byte-identical output."""
    gated = make_flay("tofino", True)
    ungated = make_flay("tofino", False)
    fuzzer = EntryFuzzer(gated.model, seed=4)
    warmup = []
    for table in ALL_TABLES:
        warmup.extend(fuzzer.representative_updates(table, per_action=2))
    gated.process_batch(warmup)
    ungated.process_batch(warmup)
    burst = []
    for table in ALL_TABLES:
        burst.extend(fuzzer.insert_burst(table, 15))
    before = gated.gate_stats()
    for update in burst:
        a = gated.process_update(update)
        b = ungated.process_update(update)
        assert a.forwarded == b.forwarded
    delta = gated.gate_stats().since(before)
    assert delta.witness_hits > 0, "burst should exercise the replay tier"
    assert_same_result(gated, ungated)
    assert lowered_trace(gated) == lowered_trace(ungated)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=5, max_value=30),
    modify=st.sampled_from([0.0, 0.2, 0.4]),
    delete=st.sampled_from([0.0, 0.2]),
)
def test_property_gated_equals_ungated(seed, count, modify, delete):
    """Hypothesis sweep over stream shapes: any fuzzer stream, any mix of
    inserts/modifies/deletes, the gate never changes a verdict."""
    gated = make_flay("none", True)
    ungated = make_flay("none", False)
    stream = EntryFuzzer(gated.model, seed=seed).update_stream(
        tables=ALL_TABLES,
        count=count,
        modify_fraction=modify,
        delete_fraction=delete,
    )
    for update in stream:
        gated.process_update(update)
        ungated.process_update(update)
    assert_same_result(gated, ungated)
