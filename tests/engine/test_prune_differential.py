"""Differential safety net for the prune pass: pruned == ``--no-prune``.

The pass's contract is *output preservation*: every branch it deletes is
a branch the symbolic executor would short-circuit, and every constant
it folds is one the specializer folds to the same literal — so the
specialized source, the materialized table state, and the lowered write
sequence are byte-identical with pruning on and off.  Program points and
CNF sizes legitimately differ (that's the point of the pass), so unlike
the gate differential these tests never compare point verdicts.

Exceptions count as output too: when the pipeline raises on a given
update, it must raise identically on both sides (error-for-error
equivalence), which the corpus replay exercises.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import Flay, FlayOptions
from repro.p4.parser import parse_program
from repro.programs import registry
from repro.runtime.fuzzer import EntryFuzzer

TARGETS = ("tofino", "tofino-incremental", "bmv2")

# The gate-differential program, plus a constant-dominated region so the
# prune pass actually engages: an always-true guard around a table apply,
# a dead else branch, and a foldable derived constant.
SOURCE = """
header h_t { bit<8> a; bit<8> b; bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; bit<8> p; bit<8> q; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action setn(bit<8> v) { meta.n = v; }
    action noop() { }
    table ta {
        key = { hdr.h.a: exact; }
        actions = { setn; noop; }
        default_action = noop();
    }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply {
        meta.p = 8w1;
        meta.q = meta.p + 8w1;
        if (meta.p == 8w1) { ta.apply(); } else { hdr.h.g = 8w9; }
        t1.apply();
        if (meta.m == 8w3) { t2.apply(); }
        if (meta.n == meta.q) { hdr.h.g = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""

ALL_TABLES = ["ta", "t1", "t2"]


def make_flay(target, prune, source=SOURCE):
    program = source if not isinstance(source, str) else parse_program(source)
    return Flay(program, FlayOptions(target=target, prune=prune))


def final_state(flay):
    return {
        name: table.entries()
        for name, table in flay.runtime.state.tables.items()
    }


def lowered_trace(flay):
    return [
        (lowered.target, lowered.table, lowered.update)
        for lowered in flay.runtime.lowered_updates
    ]


def assert_same_output(pruned, unpruned):
    """Byte-identical observable output; verdict/point internals exempt."""
    assert pruned.specialized_source() == unpruned.specialized_source()
    assert final_state(pruned) == final_state(unpruned)
    assert lowered_trace(pruned) == lowered_trace(unpruned)


def run_stream(pruned, unpruned, stream):
    """Apply ``stream`` to both engines, demanding error-for-error parity."""
    for update in stream:
        ra = rb = ea = eb = None
        try:
            ra = pruned.process_update(update)
        except Exception as exc:  # noqa: BLE001 — parity is the assertion
            ea = exc
        try:
            rb = unpruned.process_update(update)
        except Exception as exc:  # noqa: BLE001
            eb = exc
        assert repr(ea) == repr(eb), f"exception divergence on {update}"
        if ra is not None:
            assert ra.forwarded == rb.forwarded


@pytest.mark.parametrize("target", TARGETS)
def test_cold_specialization_identical(target):
    pruned = make_flay(target, True)
    unpruned = make_flay(target, False)
    assert_same_output(pruned, unpruned)
    # Non-vacuity: the pass engaged on this program.
    assert pruned.prune_report is not None and pruned.prune_report.changed
    assert pruned.prune_report.removed_branches >= 1
    assert unpruned.prune_report is None


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("seed", [0, 7])
def test_sequential_stream_identical(target, seed):
    pruned = make_flay(target, True)
    unpruned = make_flay(target, False)
    stream = EntryFuzzer(pruned.model, seed=seed).update_stream(
        tables=ALL_TABLES, count=40, modify_fraction=0.3, delete_fraction=0.2
    )
    run_stream(pruned, unpruned, stream)
    assert_same_output(pruned, unpruned)


@pytest.mark.parametrize("name", ["fig3", "scion", "switch"])
def test_corpus_cold_specialization_identical(name):
    program = registry.load(name)
    pruned = make_flay("tofino", True, program)
    unpruned = make_flay("tofino", False, registry.load(name))
    assert pruned.specialized_source() == unpruned.specialized_source()
    if name == "switch":
        # switch carries real dead code (constant if-ladders); the
        # differential must hold while the pass is actually rewriting.
        assert pruned.prune_report.removed_branches >= 1


@pytest.mark.parametrize("name,target", [("scion", "tofino"), ("switch", "tofino")])
def test_corpus_update_replay_identical(name, target):
    pruned = make_flay(target, True, registry.load(name))
    unpruned = make_flay(target, False, registry.load(name))
    tables = sorted(pruned.model.tables)[:6]
    stream = EntryFuzzer(pruned.model, seed=3).update_stream(
        tables=tables, count=30, modify_fraction=0.25, delete_fraction=0.15
    )
    run_stream(pruned, unpruned, stream)
    assert_same_output(pruned, unpruned)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=5, max_value=30),
    modify=st.sampled_from([0.0, 0.2, 0.4]),
    delete=st.sampled_from([0.0, 0.2]),
)
def test_property_pruned_equals_unpruned(seed, count, modify, delete):
    """Hypothesis sweep over stream shapes: any fuzzer stream, any mix of
    inserts/modifies/deletes, pruning never changes observable output."""
    pruned = make_flay("none", True)
    unpruned = make_flay("none", False)
    stream = EntryFuzzer(pruned.model, seed=seed).update_stream(
        tables=ALL_TABLES,
        count=count,
        modify_fraction=modify,
        delete_fraction=delete,
    )
    run_stream(pruned, unpruned, stream)
    assert_same_output(pruned, unpruned)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**12),
    chunk_sizes=st.lists(
        st.integers(min_value=1, max_value=8), min_size=1, max_size=6
    ),
)
def test_property_batched_replay_identical(seed, chunk_sizes):
    """Batched application (the scheduler path) under pruning: identical
    recompile decisions and output for arbitrary batch boundaries."""
    pruned = make_flay("tofino", True)
    unpruned = make_flay("tofino", False)
    stream = EntryFuzzer(pruned.model, seed=seed).update_stream(
        tables=ALL_TABLES, count=25, modify_fraction=0.2, delete_fraction=0.1
    )
    i = 0
    while i < len(stream):
        size = chunk_sizes[i % len(chunk_sizes)]
        batch = stream[i : i + size]
        i += size
        ra = pruned.apply_batch(batch, workers=2)
        rb = unpruned.apply_batch(batch, workers=2)
        # Point IDs carry an allocation counter that shifts when pruning
        # removes points, so compare them with the counter stripped.
        normalize = lambda pids: sorted(p.split("#")[0] for p in pids)
        assert normalize(ra.changed) == normalize(rb.changed)
        assert ra.recompiled == rb.recompiled
    assert_same_output(pruned, unpruned)
