"""Differential safety net for the structural table-verdict memo.

The memo's contract is pure ablation: a cached verdict is byte-identical
to the recomputed one, because the memo key — the table's active-entry
digest plus the selector/hit term identities — spans every input the
uncached computation reads.  These tests pin that contract the way the
gate's differential suite pins gating: fuzzer streams, sequential and
batched application (thread and process executors), snapshot/restore
round-trips, and a Hypothesis sweep — identical output either way, with
a non-vacuity check that the memo actually got hits.

CI runs this module with ``FLAY_TABLE_VERDICT_CACHE`` ∈ {0, 1} ×
``FLAY_BATCH_WORKERS`` ∈ {1, 4}; the env vars parameterize the
worker-count-invariance regime (the explicit cached-vs-uncached tests
construct both engines regardless).
"""

import os
import pickle
import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import Flay, FlayOptions
from repro.engine.context import EngineOptions
from repro.engine.engine import Engine
from repro.p4.parser import parse_program
from repro.runtime.fuzzer import EntryFuzzer

#: CI matrix axes.
ENV_WORKERS = int(os.environ.get("FLAY_BATCH_WORKERS", "2"))
ENV_CACHE = os.environ.get("FLAY_TABLE_VERDICT_CACHE", "1") != "0"

SOURCE = """
header h_t { bit<8> a; bit<8> b; bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; bit<8> n; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action setn(bit<8> v) { meta.n = v; }
    action noop() { }
    table ta {
        key = { hdr.h.a: exact; }
        actions = { setn; noop; }
        default_action = noop();
    }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply {
        ta.apply();
        t1.apply();
        if (meta.m == 8w3) { t2.apply(); }
        if (meta.n == 8w7) { hdr.h.g = 8w1; }
    }
}
Pipeline(P(), C()) main;
"""

ALL_TABLES = ["ta", "t1", "t2"]


def make_flay(target, cache):
    return Flay(
        parse_program(SOURCE),
        FlayOptions(target=target, table_verdict_cache=cache),
    )


def chunk(stream, seed):
    """Split a stream into random-size batches (1..12), seeded."""
    rng = random.Random(seed * 7919 + 13)
    batches, i = [], 0
    while i < len(stream):
        size = rng.randint(1, 12)
        batches.append(stream[i : i + size])
        i += size
    return batches


def lowered_trace(flay):
    return [
        (lowered.target, lowered.table, lowered.update)
        for lowered in flay.runtime.lowered_updates
    ]


def assert_same_result(a, b):
    assert a.runtime.point_verdicts == b.runtime.point_verdicts
    assert a.runtime.table_verdicts == b.runtime.table_verdicts
    assert a.specialized_source() == b.specialized_source()


def memo_counter(flay):
    return flay.runtime.ctx.query_engine.table_verdict_counter


def test_flag_wires_through_to_the_query_engine():
    cached = make_flay("none", True)
    uncached = make_flay("none", False)
    assert cached.runtime.ctx.query_engine.table_verdict_cache is True
    assert uncached.runtime.ctx.query_engine.table_verdict_cache is False


@pytest.mark.parametrize("target", ("none", "tofino"))
@pytest.mark.parametrize("seed", [0, 7])
def test_sequential_stream_cached_equals_uncached(target, seed):
    cached = make_flay(target, True)
    uncached = make_flay(target, False)
    stream = EntryFuzzer(cached.model, seed=seed).update_stream(
        tables=ALL_TABLES, count=50, modify_fraction=0.3, delete_fraction=0.2
    )
    for update in stream:
        a = cached.process_update(update)
        b = uncached.process_update(update)
        assert a.forwarded == b.forwarded
    assert_same_result(cached, uncached)
    assert lowered_trace(cached) == lowered_trace(uncached)
    # Non-vacuous: the memo engaged on one side and stayed idle on the
    # other (the disabled engine must never even count).
    assert memo_counter(cached).hits > 0
    assert memo_counter(uncached).hits == 0
    assert memo_counter(uncached).misses == 0
    assert not uncached.runtime.ctx.query_engine._table_verdict_memo


@pytest.mark.parametrize("executor", ("thread", "process"))
@pytest.mark.parametrize("seed", [2])
def test_batched_stream_cached_equals_uncached(executor, seed):
    cached = make_flay("tofino", True)
    uncached = make_flay("tofino", False)
    stream = EntryFuzzer(cached.model, seed=seed).update_stream(
        tables=ALL_TABLES, count=40, modify_fraction=0.25, delete_fraction=0.15
    )
    for batch in chunk(stream, seed):
        ra = cached.apply_batch(batch, workers=ENV_WORKERS, executor=executor)
        rb = uncached.apply_batch(batch, workers=ENV_WORKERS, executor=executor)
        assert ra.changed == rb.changed
        assert ra.recompiled == rb.recompiled
    assert_same_result(cached, uncached)
    assert lowered_trace(cached) == lowered_trace(uncached)
    # Worker counters fold back through both transports; memo *entries*
    # only graft in thread mode (a process child's delta keys on its own
    # term identities and is deliberately dropped, like the simplify
    # memo), so only the thread pool accumulates cross-batch hits.
    assert memo_counter(cached).misses > 0
    if executor == "thread":
        assert memo_counter(cached).hits > 0
    assert memo_counter(uncached).hits == 0
    assert memo_counter(uncached).misses == 0


@pytest.mark.parametrize("seed", [3])
def test_output_invariant_across_worker_counts(seed):
    """workers=1, 4 under the env-selected cache flag (the CI matrix
    crosses this with FLAY_TABLE_VERDICT_CACHE=0/1)."""
    engines = {w: make_flay("tofino", ENV_CACHE) for w in (1, 4)}
    stream = EntryFuzzer(engines[1].model, seed=seed).update_stream(
        tables=ALL_TABLES, count=50, modify_fraction=0.25, delete_fraction=0.15
    )
    for workers, flay in engines.items():
        for batch in chunk(stream, seed):
            flay.apply_batch(batch, workers=workers)
    assert_same_result(engines[1], engines[4])
    assert lowered_trace(engines[1]) == lowered_trace(engines[4])


def test_snapshot_roundtrip_reprimes_the_memo():
    """A restored engine behaves identically to the live one and to an
    uncached engine — and the restore pass actually re-primed the memo
    (the blob cannot carry it: the keys embed term identities)."""

    def drive(engine, seed, count):
        for update in EntryFuzzer(engine.model, seed=seed).update_stream(
            tables=ALL_TABLES, count=count
        ):
            engine.process_update(update)

    live = Engine(source=SOURCE, options=EngineOptions(target="none"))
    drive(live, seed=5, count=25)
    restored = Engine.restore(pickle.loads(pickle.dumps(live.snapshot())))
    assert restored.ctx.query_engine._table_verdict_memo, (
        "restore should re-prime the table-verdict memo"
    )
    uncached = Engine(
        source=SOURCE,
        options=EngineOptions(target="none", table_verdict_cache=False),
    )
    drive(uncached, seed=5, count=25)
    for engine in (live, restored):
        drive(engine, seed=6, count=15)
    drive(uncached, seed=6, count=15)
    assert restored.point_verdicts == live.point_verdicts
    assert restored.table_verdicts == live.table_verdicts
    assert restored.point_verdicts == uncached.point_verdicts
    assert restored.table_verdicts == uncached.table_verdicts


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=5, max_value=30),
    modify=st.sampled_from([0.0, 0.2, 0.4]),
    delete=st.sampled_from([0.0, 0.2]),
)
def test_property_cached_equals_uncached(seed, count, modify, delete):
    """Hypothesis sweep over stream shapes: any fuzzer stream, any mix of
    inserts/modifies/deletes, the memo never changes a verdict."""
    cached = make_flay("none", True)
    uncached = make_flay("none", False)
    stream = EntryFuzzer(cached.model, seed=seed).update_stream(
        tables=ALL_TABLES,
        count=count,
        modify_fraction=modify,
        delete_fraction=delete,
    )
    for update in stream:
        cached.process_update(update)
        uncached.process_update(update)
    assert_same_result(cached, uncached)
