"""Shared-store fleet replay vs N isolated engines: byte-identical output.

The tentpole soundness property.  A fleet where switches adopt shared
cold artifacts and term-pure warm caches must lower *exactly* what a
fleet of fully isolated engines lowers on the same correlated trace —
per switch, in order, across targets and executor modes.
"""

import pytest

from repro.engine.context import EngineOptions
from repro.fleet import FleetSimulator
from repro.fleet.sim import dedup_ratio
from repro.programs import registry

FIG5 = registry.get("fig5").source()
FIG3 = registry.get("fig3").source()


def _pair(source, options, **kwargs):
    """(shared report, isolated report) over identical replay arguments."""
    shared = FleetSimulator(source, options=options, shared_store=True, **kwargs)
    isolated = FleetSimulator(source, options=options, shared_store=False, **kwargs)
    return shared.run(), isolated.run(), shared


SMALL = dict(
    switches=3,
    seed=3,
    duration=50.0,
    mean_interval=12.0,
    correlation=0.8,
    updates_per_burst=4,
    divergent_prefix=6,
)


@pytest.mark.parametrize("target", ["none", "tofino"])
def test_shared_matches_isolated_per_target(target):
    shared, isolated, _ = _pair(FIG5, EngineOptions(target=target), **SMALL)
    assert shared.lowered_traces() == isolated.lowered_traces()
    assert shared.specialized_sources() == isolated.specialized_sources()


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_shared_matches_isolated_per_executor(executor):
    shared, isolated, _ = _pair(
        FIG3, EngineOptions(target="none"), executor=executor, **SMALL
    )
    assert shared.lowered_traces() == isolated.lowered_traces()
    assert shared.specialized_sources() == isolated.specialized_sources()


def test_shared_matches_isolated_process_executor():
    # One (smaller) process-pool case: arena transport under sharing.
    kwargs = dict(SMALL, switches=2, duration=30.0)
    shared, isolated, _ = _pair(
        FIG3, EngineOptions(target="none"), executor="process", workers=2, **kwargs
    )
    assert shared.lowered_traces() == isolated.lowered_traces()
    assert shared.specialized_sources() == isolated.specialized_sources()


def test_fleet_shares_one_store_entry():
    shared_report, isolated_report, sim = _pair(
        FIG5, EngineOptions(target="none"), **SMALL
    )
    assert shared_report.store_entries == 1
    assert shared_report.store_donations == 1
    assert shared_report.store_hits == SMALL["switches"] - 1
    assert isolated_report.store_entries == 0
    # All switches probe one encoder object.
    encoders = {
        id(engine.ctx.query_engine.solver._encoder) for engine in sim.engines
    }
    assert len(encoders) == 1


def test_fragment_footprint_shrinks_or_ties():
    # Toy programs may decide every query pre-blasting (footprint 0);
    # sharing must never *grow* the footprint, and the per-switch count
    # collapses to one encoder's worth whenever fragments exist at all.
    shared, isolated, _ = _pair(FIG5, EngineOptions(target="none"), **SMALL)
    assert shared.fragment_footprint <= isolated.fragment_footprint
    assert dedup_ratio(isolated, shared) >= 1.0


def test_replay_is_deterministic():
    a_shared, a_iso, _ = _pair(FIG5, EngineOptions(target="none"), **SMALL)
    b_shared, b_iso, _ = _pair(FIG5, EngineOptions(target="none"), **SMALL)
    assert a_shared.lowered_traces() == b_shared.lowered_traces()
    assert a_iso.lowered_traces() == b_iso.lowered_traces()
    assert a_shared.events == b_shared.events


def test_simulator_replays_once():
    sim = FleetSimulator(FIG3, switches=2, duration=20.0, seed=1)
    sim.run()
    with pytest.raises(RuntimeError):
        sim.run()


def test_rejects_empty_fleet():
    with pytest.raises(ValueError):
        FleetSimulator(FIG3, switches=0)
