"""Warm snapshot/restore round-trips: the failover correctness property.

Mirrors the arena transport suite (``tests/smt/test_arena.py``): the
snapshot blob is one :class:`~repro.smt.arena.TermArena` payload, so a
restored engine — same process or a fresh one — must be observationally
identical to the live engine it was taken from: same specialized output,
same verdicts, and the same behavior on every subsequent update.
"""

import pickle
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.context import EngineOptions
from repro.engine.engine import Engine
from repro.engine.events import EventBus, PassFinished, SnapshotRestored
from repro.p4.printer import print_program
from repro.programs import registry
from repro.runtime.fuzzer import EntryFuzzer

FIG3 = registry.get("fig3").source()
FIG5 = registry.get("fig5").source()
SWITCH = registry.get("switch").source()


def _warm_engine(source, prefix, seed, options=None):
    engine = Engine(source=source, options=options or EngineOptions(target="none"))
    for update in EntryFuzzer(engine.model, seed=seed).update_stream(count=prefix):
        engine.process_update(update)
    return engine


def _lowered(engine, start=0):
    return [
        (l.target, l.table, l.update) for l in engine.lowered_updates[start:]
    ]


def _drive(engine, seed, count):
    for update in EntryFuzzer(engine.model, seed=seed).update_stream(count=count):
        engine.process_update(update)


class TestRoundTrip:
    @settings(max_examples=8, deadline=None)
    @given(
        prefix=st.integers(min_value=0, max_value=25),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_arbitrary_warm_session_round_trips(self, prefix, seed):
        live = _warm_engine(FIG3, prefix, seed)
        blob = pickle.loads(pickle.dumps(live.snapshot()))
        restored = Engine.restore(blob)
        assert print_program(restored.specialized_program) == print_program(
            live.specialized_program
        )
        assert restored.point_verdicts == live.point_verdicts
        assert restored.table_verdicts == live.table_verdicts
        assert restored.recompilations == live.recompilations
        # The remaining stream yields identical behavior on both engines.
        base_live, base_restored = len(live.lowered_updates), len(
            restored.lowered_updates
        )
        _drive(live, seed + 1, 12)
        _drive(restored, seed + 1, 12)
        assert _lowered(live, base_live) == _lowered(restored, base_restored)
        assert print_program(restored.specialized_program) == print_program(
            live.specialized_program
        )
        assert [d.forwarded for d in live.update_log[-12:]] == [
            d.forwarded for d in restored.update_log[-12:]
        ]

    def test_restore_skips_the_cold_encode(self):
        # A restored engine must not pay analysis/encode again: the
        # restore pass replaces them, and the telemetry proves the warm
        # state actually came back (roots replayed, witnesses restored).
        live = _warm_engine(SWITCH, 20, seed=3)
        bus = EventBus()
        log = bus.attach_log()
        restored = Engine.restore(live.snapshot(), bus=bus)
        names = [event.pass_name for event in log.of_type(PassFinished)]
        assert "restore" in names
        assert "analysis" not in names and "encode" not in names
        events = log.of_type(SnapshotRestored)
        assert len(events) == 1
        assert events[0].witness_records > 0
        assert restored.point_verdicts == live.point_verdicts

    def test_restored_warm_latency_is_warm_path(self):
        # Failover claim: the replica answers from restored caches —
        # the warm update must not trigger a from-scratch recompile storm.
        live = _warm_engine(FIG3, 15, seed=9)
        restored = Engine.restore(pickle.loads(pickle.dumps(live.snapshot())))
        before = restored.recompilations
        _drive(restored, seed=10, count=5)
        _drive(live, seed=10, count=5)
        assert restored.recompilations - before == live.recompilations - before

    def test_snapshot_requires_source(self):
        from repro.p4.parser import parse_program

        engine = Engine(parse_program(FIG3), EngineOptions(target="none"))
        with pytest.raises(ValueError):
            engine.snapshot()

    def test_solver_state_survives(self):
        live = _warm_engine(FIG5, 20, seed=4)
        restored = Engine.restore(pickle.loads(pickle.dumps(live.snapshot())))
        a = live.ctx.query_engine.solver
        b = restored.ctx.query_engine.solver
        assert b._encoder.var_count == a._encoder.var_count
        assert b._encoder.fragment_count == a._encoder.fragment_count
        assert b._encoder._roots == a._encoder._roots
        assert restored.ctx.query_engine._exec_cache == (
            live.ctx.query_engine._exec_cache
        )


class TestCrossProcess:
    def test_restore_in_fresh_process(self, tmp_path: Path):
        # The real failover path: snapshot on this interpreter, restore
        # on a brand-new one (fresh hash-consing table, fresh caches),
        # drive both with the same seeded stream, compare observables.
        live = _warm_engine(FIG3, 18, seed=21)
        snap = tmp_path / "switch.snapshot.pkl"
        snap.write_bytes(pickle.dumps(live.snapshot()))
        script = """
import pickle, sys
from repro.engine.engine import Engine
from repro.p4.printer import print_program
from repro.runtime.fuzzer import EntryFuzzer

with open(sys.argv[1], "rb") as handle:
    engine = Engine.restore(pickle.load(handle))
base = len(engine.lowered_updates)
for update in EntryFuzzer(engine.model, seed=22).update_stream(count=10):
    engine.process_update(update)
trace = [(l.target, l.table, repr(l.update)) for l in engine.lowered_updates[base:]]
print(repr((print_program(engine.specialized_program), trace,
            sorted(engine.point_verdicts.items()))))
"""
        result = subprocess.run(
            [sys.executable, "-c", script, str(snap)],
            capture_output=True,
            text=True,
            check=True,
        )
        base = len(live.lowered_updates)
        _drive(live, seed=22, count=10)
        expected = (
            print_program(live.specialized_program),
            [
                (l.target, l.table, repr(l.update))
                for l in live.lowered_updates[base:]
            ],
            sorted(live.point_verdicts.items()),
        )
        assert result.stdout.strip() == repr(expected)
