"""The content-addressed shared store's contract.

Keying must separate exactly the option sets that change verdicts, and
adoption must hand the second engine the *same* warm objects the donor
pinned — not copies — while leaving per-switch state private.
"""

import pytest

from repro.engine.context import EngineOptions
from repro.engine.engine import Engine
from repro.engine.events import EventBus, StoreActivity
from repro.fleet.store import COLD_KEY_FIELDS, SharedStore
from repro.p4.printer import print_program
from repro.programs import registry
from repro.runtime.fuzzer import EntryFuzzer

FIG3 = registry.get("fig3").source()
FIG5 = registry.get("fig5").source()


class TestKeying:
    def test_key_is_stable(self):
        opts = EngineOptions()
        assert SharedStore.key_for(FIG3, opts) == SharedStore.key_for(FIG3, opts)

    def test_key_separates_sources(self):
        opts = EngineOptions()
        assert SharedStore.key_for(FIG3, opts) != SharedStore.key_for(FIG5, opts)

    @pytest.mark.parametrize("field_name", COLD_KEY_FIELDS)
    def test_every_verdict_relevant_option_is_keyed(self, field_name):
        base = EngineOptions()
        value = getattr(base, field_name)
        if isinstance(value, bool):
            changed = EngineOptions(**{field_name: not value})
        elif field_name == "effort":
            changed = EngineOptions(effort="dce")
        else:  # numeric budgets / thresholds (may default to None)
            changed = EngineOptions(**{field_name: 1 if value is None else value + 1})
        assert SharedStore.key_for(FIG3, base) != SharedStore.key_for(FIG3, changed)

    def test_target_and_executor_do_not_split_entries(self):
        # Lowering strategy never touches terms or verdicts, so switches
        # with different backends share one cold pipeline.
        a = EngineOptions(target="tofino", executor="thread")
        b = EngineOptions(target="none", executor="serial")
        assert SharedStore.key_for(FIG3, a) == SharedStore.key_for(FIG3, b)


class TestAdoption:
    def test_second_engine_adopts(self):
        store = SharedStore()
        opts = EngineOptions()
        donor = Engine(source=FIG3, options=opts, store=store)
        adopter = Engine(source=FIG3, options=opts, store=store)
        assert not donor.ctx.store_hit
        assert adopter.ctx.store_hit
        assert len(store) == 1
        assert store.hits == 1 and store.misses == 1 and store.donations == 1

    def test_adopter_shares_warm_objects_by_identity(self):
        store = SharedStore()
        opts = EngineOptions()
        donor = Engine(source=FIG3, options=opts, store=store)
        adopter = Engine(source=FIG3, options=opts, store=store)
        d, a = donor.ctx.query_engine.solver, adopter.ctx.query_engine.solver
        assert a._encoder is d._encoder
        assert a._session is d._session
        assert a._results is d._results
        assert (
            adopter.ctx.query_engine._exec_cache
            is donor.ctx.query_engine._exec_cache
        )

    def test_per_switch_state_stays_private(self):
        store = SharedStore()
        opts = EngineOptions()
        donor = Engine(source=FIG3, options=opts, store=store)
        adopter = Engine(source=FIG3, options=opts, store=store)
        assert adopter.ctx.state is not donor.ctx.state
        assert adopter.ctx.substitution is not donor.ctx.substitution
        assert adopter.ctx.gate is not donor.ctx.gate
        for update in EntryFuzzer(adopter.model, seed=5).update_stream(count=8):
            adopter.process_update(update)
        assert all(len(ts) == 0 for ts in donor.ctx.state.tables.values())

    def test_both_solvers_are_pinned(self):
        # The var-limit generation reset would silently re-number the
        # shared fragment graph; pinning forbids it for donor and adopter.
        store = SharedStore()
        opts = EngineOptions()
        donor = Engine(source=FIG3, options=opts, store=store)
        adopter = Engine(source=FIG3, options=opts, store=store)
        assert donor.ctx.query_engine.solver._encoder_pinned
        assert adopter.ctx.query_engine.solver._encoder_pinned

    def test_divergent_options_do_not_adopt(self):
        store = SharedStore()
        Engine(source=FIG3, options=EngineOptions(use_solver=True), store=store)
        other = Engine(
            source=FIG3, options=EngineOptions(use_solver=False), store=store
        )
        assert not other.ctx.store_hit
        assert len(store) == 2

    def test_store_activity_events(self):
        bus = EventBus()
        log = bus.attach_log()
        store = SharedStore()
        opts = EngineOptions()
        Engine(source=FIG3, options=opts, store=store, bus=bus)
        Engine(source=FIG3, options=opts, store=store, bus=bus)
        seen = log.of_type(StoreActivity)
        assert [event.hit for event in seen] == [False, True]
        assert seen[0].key == SharedStore.key_for(FIG3, opts)


class TestSharedDifferential:
    def test_adopter_matches_isolated_twin(self):
        # The soundness claim in one assertion: an engine warmed from the
        # store is byte-identical to one that paid the full cold pipeline.
        store = SharedStore()
        opts = EngineOptions()
        Engine(source=FIG5, options=opts, store=store)
        adopter = Engine(source=FIG5, options=opts, store=store)
        isolated = Engine(source=FIG5, options=opts)
        updates = EntryFuzzer(adopter.model, seed=11).update_stream(count=25)
        twin = EntryFuzzer(isolated.model, seed=11).update_stream(count=25)
        assert updates == twin
        for update in updates:
            adopter.process_update(update)
        for update in twin:
            isolated.process_update(update)
        assert [
            (l.target, l.table, l.update) for l in adopter.lowered_updates
        ] == [(l.target, l.table, l.update) for l in isolated.lowered_updates]
        assert print_program(adopter.specialized_program) == print_program(
            isolated.specialized_program
        )
        assert adopter.point_verdicts == isolated.point_verdicts
        assert adopter.table_verdicts == isolated.table_verdicts
