"""The soundness invariant: for any control-plane configuration and any
packet, the Flay-specialized program behaves exactly like the original.

This is the property that makes "forward the update without recompiling"
safe: the specialized implementation plus the same entries must be
indistinguishable from the original program on the wire.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Flay, FlayOptions
from repro.p4.parser import parse_program
from repro.runtime.entries import ExactMatch, TableEntry, TernaryMatch
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import INSERT, Update
from repro.targets.bmv2 import Interpreter, Packet

SOURCE = """
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t { bit<8> ttl; bit<8> proto; bit<32> src; bit<32> dst; }
struct headers_t { eth_t eth; ipv4_t ipv4; }
struct meta_t { bit<9> port; bit<8> verdict; bit<8> class; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start {
        pkt_extract(hdr.eth);
        transition select(hdr.eth.type) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt_extract(hdr.ipv4);
        transition accept;
    }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action fwd(bit<9> port) { meta.port = port; }
    action classify(bit<8> class) { meta.class = class; }
    action deny() { meta.verdict = 1; mark_to_drop(); }
    action noop() { }
    table acl {
        key = { hdr.ipv4.src: ternary; hdr.ipv4.proto: ternary; }
        actions = { deny; classify; noop; }
        default_action = noop();
    }
    table fwd_table {
        key = { hdr.eth.dst: exact; }
        actions = { fwd; noop; }
        default_action = noop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            acl.apply();
            if (meta.verdict == 0) {
                fwd_table.apply();
                if (meta.class == 3) {
                    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                }
            }
        }
    }
}
Pipeline(P(), C()) main;
"""

#: Paths the comparison ignores: headers pruned from the specialized
#: parser are payload, and trace/internal bookkeeping differs legitimately.
IGNORE = ()


def outputs_equal(original_result, specialized_result, pruned_headers):
    ignored = tuple(pruned_headers)
    a = original_result.output_view(ignore_prefixes=ignored)
    b = specialized_result.output_view(ignore_prefixes=ignored)
    # The specialized store may lack pruned paths entirely; compare the
    # intersection plus insist both agree on drop/error.
    keys = set(a) & set(b)
    assert original_result.dropped == specialized_result.dropped
    assert original_result.parser_error == specialized_result.parser_error
    for key in keys:
        assert a[key] == b[key], key
    return True


@st.composite
def configs(draw):
    updates = []
    num_acl = draw(st.integers(0, 4))
    for i in range(num_acl):
        action = draw(st.sampled_from(["deny", "classify", "noop"]))
        args = ()
        if action == "classify":
            args = (draw(st.integers(0, 255)),)
        updates.append(
            Update(
                "acl",
                INSERT,
                TableEntry(
                    (
                        TernaryMatch(
                            draw(st.integers(0, 2**32 - 1)),
                            draw(st.sampled_from([0, 0xFF000000, 0xFFFFFFFF])),
                        ),
                        TernaryMatch(draw(st.integers(0, 255)), draw(st.sampled_from([0, 0xFF]))),
                    ),
                    action,
                    args,
                    priority=i + 1,
                ),
            )
        )
    num_fwd = draw(st.integers(0, 3))
    macs = draw(
        st.lists(st.integers(0, 2**48 - 1), min_size=num_fwd, max_size=num_fwd, unique=True)
    )
    for mac in macs:
        updates.append(
            Update(
                "fwd_table",
                INSERT,
                TableEntry((ExactMatch(mac),), "fwd", (draw(st.integers(0, 511)),)),
            )
        )
    return updates


@given(
    updates=configs(),
    packet_bytes=st.binary(min_size=0, max_size=40),
)
@settings(max_examples=150, deadline=None)
def test_specialized_equals_original_on_random_packets(updates, packet_bytes):
    flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
    for update in updates:
        flay.process_update(update)

    original = Interpreter(flay.runtime.program)
    specialized = Interpreter(flay.specialized_program)
    state = flay.runtime.state

    result_orig = original.run(Packet(packet_bytes), state)
    result_spec = specialized.run(Packet(packet_bytes), state)
    outputs_equal(result_orig, result_spec, flay.report.pruned_headers)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_equivalence_after_fuzzer_bursts(data):
    """Same property, driving the configuration through the fuzzer."""
    flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
    fuzzer = EntryFuzzer(flay.model, seed=data.draw(st.integers(0, 1000)))
    count = data.draw(st.integers(0, 30))
    flay.process_batch(fuzzer.insert_burst("acl", count))
    packet_bytes = data.draw(st.binary(min_size=0, max_size=40))

    state = flay.runtime.state
    result_orig = Interpreter(flay.runtime.program).run(Packet(packet_bytes), state)
    result_spec = Interpreter(flay.specialized_program).run(Packet(packet_bytes), state)
    outputs_equal(result_orig, result_spec, flay.report.pruned_headers)


class TestDirectedEquivalence:
    """Hand-picked packets through every specialization shape."""

    def _run_both(self, flay, packet_bytes):
        state = flay.runtime.state
        orig = Interpreter(flay.runtime.program).run(Packet(packet_bytes), state)
        spec = Interpreter(flay.specialized_program).run(Packet(packet_bytes), state)
        outputs_equal(orig, spec, flay.report.pruned_headers)
        return orig

    def _ipv4_packet(self, src=0x0A0A0A0A, proto=6, dst_mac=0x112233445566):
        from repro.targets.bmv2 import PacketBuilder

        return (
            PacketBuilder()
            .push(dst_mac, 48)
            .push(0xAAAAAAAAAAAA, 48)
            .push(0x0800, 16)
            .push(64, 8)
            .push(proto, 8)
            .push(src, 32)
            .push(0x01020304, 32)
            .build()
            .data
        )

    def test_empty_config(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
        self._run_both(flay, self._ipv4_packet())

    def test_deny_rule_drops_in_both(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
        flay.process_update(
            Update(
                "acl",
                INSERT,
                TableEntry(
                    (TernaryMatch(0x0A000000, 0xFF000000), TernaryMatch(0, 0)),
                    "deny",
                    (),
                    priority=5,
                ),
            )
        )
        result = self._run_both(flay, self._ipv4_packet(src=0x0A123456))
        assert result.dropped

    def test_wildcard_classify_inlined(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
        flay.process_update(
            Update(
                "acl",
                INSERT,
                TableEntry(
                    (TernaryMatch(0, 0), TernaryMatch(0, 0)), "classify", (3,), priority=1
                ),
            )
        )
        # class == 3 always: the ttl-decrement branch becomes unconditional.
        result = self._run_both(flay, self._ipv4_packet())
        assert result.store["hdr.ipv4.ttl"] == 63

    def test_forwarding_entry(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
        mac = 0x112233445566
        flay.process_update(
            Update("fwd_table", INSERT, TableEntry((ExactMatch(mac),), "fwd", (42,)))
        )
        result = self._run_both(flay, self._ipv4_packet(dst_mac=mac))
        assert result.store["meta.port"] == 42

    def test_non_ip_traffic(self):
        flay = Flay.from_source(SOURCE, FlayOptions(target="none"))
        from repro.targets.bmv2 import PacketBuilder

        packet = PacketBuilder().push(0, 48).push(0, 48).push(0x86DD, 16).build()
        self._run_both(flay, packet.data)
