"""End-to-end reproduction of the paper's Fig. 3: one table's
implementation evolving through control-plane updates 1-5."""

import pytest

from repro.core import Flay, FlayOptions
from repro.p4 import ast_nodes as ast
from repro.programs.fig3 import source
from repro.runtime.entries import TableEntry, TernaryMatch
from repro.runtime.semantics import DELETE, INSERT, Update

FULL48 = (1 << 48) - 1


def entry(value, mask, type_arg, priority):
    return TableEntry((TernaryMatch(value, mask),), "set", (type_arg,), priority)


@pytest.fixture()
def flay():
    return Flay.from_source(source(), FlayOptions(target="none"))


def table_decl(flay):
    control = flay.specialized_program.find("Fig3Ingress")
    for local in control.locals:
        if isinstance(local, ast.TableDecl) and local.name == "eth_table":
            return local
    return None


class TestFig3:
    def test_impl_a_empty_table_removed(self, flay):
        """(1) Initial configuration: the empty table vanishes entirely."""
        assert table_decl(flay) is None
        assert "eth_table" not in flay.specialized_source()

    def test_impl_between_a_and_b_inline(self, flay):
        """(2) Entry with mask 0: the action is inlined as a constant
        assignment and the table lookup disappears."""
        decision = flay.process_update(
            Update("eth_table", INSERT, entry(0x1, 0x0, 0x800, 10))
        )
        assert decision.recompiled
        text = flay.specialized_source()
        assert table_decl(flay) is None
        assert "hdr.eth.type = 16w0x800;" in text

    def test_impl_b_exact_match(self, flay):
        """(3) Replace with a full-mask entry: the table comes back as an
        exact-match table (TCAM freed), with the unused drop action gone."""
        flay.process_update(Update("eth_table", INSERT, entry(0x1, 0x0, 0x800, 10)))
        flay.process_update(Update("eth_table", DELETE, entry(0x1, 0x0, 0x800, 10)))
        decision = flay.process_update(
            Update("eth_table", INSERT, entry(0x2, FULL48, 0x900, 10))
        )
        assert decision.recompiled
        table = table_decl(flay)
        assert table is not None
        assert table.keys[0].match_kind == "exact"
        action_names = [a.name for a in table.actions]
        assert "drop" not in action_names

    def test_impl_c_ternary(self, flay):
        """(4) Insert a partial-mask entry: back to a ternary table."""
        flay.process_update(Update("eth_table", INSERT, entry(0x2, FULL48, 0x900, 10)))
        decision = flay.process_update(
            Update("eth_table", INSERT, entry(0x5, 0x8, 0x700, 9))
        )
        assert decision.recompiled
        table = table_decl(flay)
        assert table.keys[0].match_kind == "ternary"
        assert "drop" not in [a.name for a in table.actions]

    def test_impl_d_no_recompilation(self, flay):
        """(5) Entry 3 changes nothing about the implementation: the update
        is forwarded without recompiling — the paper's headline moment."""
        flay.process_update(Update("eth_table", INSERT, entry(0x2, FULL48, 0x900, 10)))
        flay.process_update(Update("eth_table", INSERT, entry(0x5, 0x8, 0x700, 9)))
        recompiles_before = flay.runtime.recompilations
        decision = flay.process_update(
            Update("eth_table", INSERT, entry(0x6, 0x7, 0x200, 8))
        )
        assert decision.forwarded
        assert not decision.recompiled
        assert flay.runtime.recompilations == recompiles_before

    def test_full_sequence_counters(self, flay):
        """Across the whole Fig. 3 sequence: 4 implementation changes,
        1 forwarded update."""
        steps = [
            Update("eth_table", INSERT, entry(0x1, 0x0, 0x800, 10)),
            Update("eth_table", DELETE, entry(0x1, 0x0, 0x800, 10)),
            Update("eth_table", INSERT, entry(0x2, FULL48, 0x900, 10)),
            Update("eth_table", INSERT, entry(0x5, 0x8, 0x700, 9)),
            Update("eth_table", INSERT, entry(0x6, 0x7, 0x200, 8)),
        ]
        decisions = [flay.process_update(s) for s in steps]
        assert [d.recompiled for d in decisions] == [True, True, True, True, False]

    def test_update_analysis_is_fast(self, flay):
        """Each decision lands well inside the paper's ~100 ms budget."""
        flay.process_update(Update("eth_table", INSERT, entry(0x2, FULL48, 0x900, 10)))
        decision = flay.process_update(
            Update("eth_table", INSERT, entry(0x6, 0x7, 0x200, 8))
        )
        assert decision.elapsed_ms < 100
