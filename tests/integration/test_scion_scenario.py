"""End-to-end reproduction of §4.2's SCION experiments.

* Unspecialized, the SCION program needs the maximum number of Tofino-2
  stages; with the IPv4-only configuration it needs ~20% fewer.
* A burst of 1000 fuzzer-generated IPv4 routes is waved through without
  recompilation, decided in about a second.
* Enabling the IPv6 paths triggers respecialization, and the program is
  back at the maximum stage count.

These tests use a reduced-size SCION instance so the suite stays fast; the
full-size run lives in benchmarks/.
"""

import pytest

from repro.core import Flay, FlayOptions
from repro.programs import scion
from repro.runtime.entries import ExactMatch, TableEntry
from repro.runtime.fuzzer import EntryFuzzer, ipv4_route_entries
from repro.runtime.semantics import INSERT, Update
from repro.targets.tofino import TOFINO2, allocate

# Reduced-size instance: same structure, fewer interfaces/chain steps.
N_IFACES, CHAIN, V6EXT = 6, 6, 2


@pytest.fixture(scope="module")
def configured_flay():
    src = scion.source(N_IFACES, CHAIN, V6EXT)
    flay = Flay.from_source(src, FlayOptions(target="none"))
    fuzzer = EntryFuzzer(flay.model, seed=11)
    updates = [
        Update(
            "ScionIngress.underlay_map",
            INSERT,
            TableEntry((ExactMatch(0x0800),), "underlay_v4", ()),
        )
    ]
    for table in scion.ipv4_config_tables(N_IFACES, CHAIN, V6EXT):
        # A representative config exercises every action of every table,
        # like the paper's supplied SCION config.
        updates.extend(fuzzer.representative_updates(table))
    flay.process_batch(updates)
    return flay


class TestStageSavings:
    def test_specialization_reduces_stages(self, configured_flay):
        original = allocate(configured_flay.runtime.program)
        specialized = allocate(configured_flay.specialized_program)
        assert specialized.stages_used < original.stages_used
        saving = 1 - specialized.stages_used / original.stages_used
        assert 0.10 <= saving <= 0.60  # paper: ~20% on the full program

    def test_ipv6_tables_eliminated(self, configured_flay):
        text = configured_flay.specialized_source()
        assert "acl_v6" not in text
        assert "ipv6_forward" not in text
        assert "egress_if0_v6" not in text

    def test_ipv4_tables_survive(self, configured_flay):
        text = configured_flay.specialized_source()
        assert "acl_v4" in text
        assert "ipv4_forward" in text
        assert "hop_forward" in text


class TestBurst:
    def test_ipv4_burst_forwarded_without_recompilation(self, configured_flay):
        """1000 unique IPv4 routes: no recompilation, decided quickly."""
        flay = configured_flay
        entries = list(
            ipv4_route_entries(flay.model, "ScionIngress.ipv4_forward", 1000,
                               "deliver_local_v4", seed=23)
        )
        updates = [Update("ScionIngress.ipv4_forward", INSERT, e) for e in entries]
        decision = flay.process_batch(updates)
        assert decision.updates == 1000
        assert not decision.recompiled
        assert decision.elapsed_ms < 5000  # paper: "within a second"

    def test_enabling_ipv6_triggers_recompilation(self):
        src = scion.source(N_IFACES, CHAIN, V6EXT)
        flay = Flay.from_source(src, FlayOptions(target="none"))
        fuzzer = EntryFuzzer(flay.model, seed=31)
        setup = [
            Update(
                "ScionIngress.underlay_map",
                INSERT,
                TableEntry((ExactMatch(0x0800),), "underlay_v4", ()),
            )
        ]
        for table in scion.ipv4_config_tables(N_IFACES, CHAIN, V6EXT):
            setup.extend(fuzzer.representative_updates(table))
        flay.process_batch(setup)
        stages_v4_only = allocate(flay.specialized_program).stages_used

        # The IPv6-enabling batch: underlay_map entry + v6 table content.
        enable = [
            Update(
                "ScionIngress.underlay_map",
                INSERT,
                TableEntry((ExactMatch(0x86DD),), "underlay_v6", ()),
            )
        ]
        for table in ("ScionIngress.acl_v6", "ScionIngress.ipv6_forward"):
            enable.extend(fuzzer.representative_updates(table))
        decision = flay.process_batch(enable)
        assert decision.recompiled

        stages_with_v6 = allocate(flay.specialized_program).stages_used
        assert stages_with_v6 > stages_v4_only
        text = flay.specialized_source()
        assert "acl_v6" in text


class TestFullSizeCalibration:
    """The full-size program hits the paper's exact stage numbers."""

    def test_full_scion_stage_numbers(self):
        src = scion.source()  # calibrated defaults
        flay = Flay.from_source(src, FlayOptions(target="none"))
        fuzzer = EntryFuzzer(flay.model, seed=7)
        updates = [
            Update(
                "ScionIngress.underlay_map",
                INSERT,
                TableEntry((ExactMatch(0x0800),), "underlay_v4", ()),
            )
        ]
        for table in scion.ipv4_config_tables():
            updates.extend(fuzzer.representative_updates(table))
        flay.process_batch(updates)
        original = allocate(flay.runtime.program)
        specialized = allocate(flay.specialized_program)
        assert original.stages_used == TOFINO2.num_stages  # max stages
        saving = 1 - specialized.stages_used / original.stages_used
        assert 0.15 <= saving <= 0.25  # paper: 20% fewer
