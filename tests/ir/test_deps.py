"""Tests for the table dependency graph."""

from repro.ir import (
    ACTION_DEP,
    CONTROL_DEP,
    MATCH_DEP,
    build_dependency_graph,
)
from repro.ir.deps import STICKY_FIELDS
from repro.p4.parser import parse_program


def _program(locals_: str, body: str) -> str:
    return f"""
header h_t {{ bit<8> f; bit<8> g; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> a; bit<8> b; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals_}
    apply {{ {body} }}
}}
Pipeline(P(), C()) main;
"""


TWO_TABLES = """
    action set_a(bit<8> v) { meta.a = v; }
    action read_a_set_b() { meta.b = meta.a; }
    action noop() { }
    table t1 {
        key = { hdr.h.f: exact; }
        actions = { set_a; noop; }
        default_action = noop();
    }
    table t2 {
        key = { meta.a: exact; }
        actions = { read_a_set_b; noop; }
        default_action = noop();
    }
    table t3 {
        key = { hdr.h.g: exact; }
        actions = { set_a; noop; }
        default_action = noop();
    }
"""


class TestEdges:
    def test_match_dependency(self):
        graph = build_dependency_graph(
            parse_program(_program(TWO_TABLES, "t1.apply(); t2.apply();"))
        )
        kinds = {(e.src, e.dst): e.kind for e in graph.edges}
        assert kinds[("C.t1", "C.t2")] == MATCH_DEP

    def test_action_dependency(self):
        graph = build_dependency_graph(
            parse_program(_program(TWO_TABLES, "t1.apply(); t3.apply();"))
        )
        kinds = {(e.src, e.dst): e.kind for e in graph.edges}
        assert kinds[("C.t1", "C.t3")] == ACTION_DEP

    def test_independent_tables_no_edge(self):
        graph = build_dependency_graph(
            parse_program(_program(TWO_TABLES, "t2.apply(); t3.apply();"))
        )
        pairs = {(e.src, e.dst) for e in graph.edges}
        # t2 writes meta.b, t3 matches hdr.h.g and writes meta.a — no overlap.
        assert ("C.t2", "C.t3") not in pairs

    def test_gateway_control_dependency(self):
        graph = build_dependency_graph(
            parse_program(
                _program(TWO_TABLES, "if (meta.a == 0) { t2.apply(); }")
            )
        )
        gateway_edges = [e for e in graph.edges if e.kind == CONTROL_DEP]
        assert any(e.dst == "C.t2" for e in gateway_edges)

    def test_exclusive_branches_have_no_action_dep(self):
        body = """
        if (meta.b == 0) { t1.apply(); } else { t3.apply(); }
        """
        graph = build_dependency_graph(parse_program(_program(TWO_TABLES, body)))
        pairs = {(e.src, e.dst): e.kind for e in graph.edges}
        # Both write meta.a, but they are mutually exclusive.
        assert ("C.t1", "C.t3") not in pairs

    def test_sequential_branches_do_conflict(self):
        body = """
        if (meta.b == 0) { t1.apply(); }
        if (meta.b == 1) { t3.apply(); }
        """
        graph = build_dependency_graph(parse_program(_program(TWO_TABLES, body)))
        pairs = {(e.src, e.dst): e.kind for e in graph.edges}
        # Separate ifs: not provably exclusive, conservative edge stays.
        assert pairs.get(("C.t1", "C.t3")) == ACTION_DEP

    def test_sticky_drop_creates_no_action_dep(self):
        locals_ = """
    action d1() { mark_to_drop(); }
    action d2() { mark_to_drop(); }
    action noop() { }
    table ta {
        key = { hdr.h.f: exact; }
        actions = { d1; noop; }
        default_action = noop();
    }
    table tb {
        key = { hdr.h.g: exact; }
        actions = { d2; noop; }
        default_action = noop();
    }
"""
        graph = build_dependency_graph(
            parse_program(_program(locals_, "ta.apply(); tb.apply();"))
        )
        pairs = {(e.src, e.dst) for e in graph.edges}
        assert ("C.ta", "C.tb") not in pairs
        assert "std.drop" in STICKY_FIELDS

    def test_apply_hit_table_is_gateway(self):
        body = "if (t1.apply().hit) { t2.apply(); }"
        graph = build_dependency_graph(parse_program(_program(TWO_TABLES, body)))
        # t1 guards t2: control dep from the table itself, no synthetic gw.
        kinds = {(e.src, e.dst): e.kind for e in graph.edges}
        assert ("C.t1", "C.t2") in kinds


class TestNodeMetadata:
    def test_key_bits_by_kind(self):
        locals_ = """
    action noop() { }
    table t {
        key = { hdr.h.f: exact; meta.a: ternary; hdr.h.g: lpm; }
        actions = { noop; }
        default_action = noop();
    }
"""
        graph = build_dependency_graph(parse_program(_program(locals_, "t.apply();")))
        node = graph.nodes["C.t"]
        assert node.exact_key_bits == 8
        assert node.ternary_key_bits == 8
        assert node.lpm_key_bits == 8
        assert node.key_bits == 24

    def test_longest_chain(self):
        graph = build_dependency_graph(
            parse_program(_program(TWO_TABLES, "t1.apply(); t2.apply();"))
        )
        assert graph.longest_chain() >= 2
