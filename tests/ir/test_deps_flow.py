"""Flow-sensitive precision for the dependency graph (``precision="flow"``).

The flow mode swaps the historical syntactic per-action read/write walk
for :func:`repro.analysis.dataflow.effects.action_effects`.  The tests
pin both directions of the refinement:

* a read that is provably preceded by a definite write in the same
  action no longer creates a spurious match dependency;
* a destination-writing extern (``hash``/``update_checksum``) counts as
  a write, so a real write-after-write hazard the syntactic walk missed
  produces an action dependency.

They also pin the honest limit of the refinement: a killed read always
implies the killing write, so the earlier writer keeps an *action*
edge to the reader — connectivity (and thus strict conflict components)
is unchanged on programs whose only refinements are kills.  That is the
mechanism behind the measured corpus parity recorded in ``BENCH_8.json``.
"""

import pytest

from repro.analysis import analyze
from repro.core import Flay, FlayOptions
from repro.engine.batch import conflict_components
from repro.ir import build_dependency_graph
from repro.ir.deps import (
    ACTION_DEP,
    MATCH_DEP,
    PRECISION_FLOW,
    PRECISION_SYNTACTIC,
)
from repro.p4.parser import parse_program
from repro.programs import registry


def _program(locals_: str, body: str):
    return parse_program(f"""
header h_t {{ bit<8> f; bit<8> g; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> a; bit<8> b; bit<8> c; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ pkt_extract(hdr.h); transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals_}
    apply {{ {body} }}
}}
Pipeline(P(), C()) main;
""")


def edge_kinds(graph):
    return {(e.src, e.dst, e.kind) for e in graph.edges}


# Writer table, then a reader whose action kills meta.a before reading it.
KILLED_READ = """
    action write_a(bit<8> v) { meta.a = v; }
    action kill_then_read() { meta.a = 8w5; meta.b = meta.a; }
    action noop() { }
    table tw {
        key = { hdr.h.f: exact; }
        actions = { write_a; noop; }
        default_action = noop();
    }
    table tr {
        key = { hdr.h.g: exact; }
        actions = { kill_then_read; noop; }
        default_action = noop();
    }
"""


class TestKilledRead:
    def test_syntactic_keeps_the_spurious_match_edge(self):
        graph = build_dependency_graph(
            _program(KILLED_READ, "tw.apply(); tr.apply();"),
            precision=PRECISION_SYNTACTIC,
        )
        assert "meta.a" in graph.nodes["C.tr"].reads
        assert ("C.tw", "C.tr", MATCH_DEP) in edge_kinds(graph)

    def test_flow_drops_the_killed_read_and_its_match_edge(self):
        graph = build_dependency_graph(
            _program(KILLED_READ, "tw.apply(); tr.apply();"),
            precision=PRECISION_FLOW,
        )
        assert "meta.a" not in graph.nodes["C.tr"].reads
        assert ("C.tw", "C.tr", MATCH_DEP) not in edge_kinds(graph)

    def test_kill_write_keeps_the_action_edge(self):
        # The refinement's honest limit: killing a read *is* a write, so
        # tw → tr survives as a write-after-write action dependency and
        # strict components cannot split on kill-only refinements.
        graph = build_dependency_graph(
            _program(KILLED_READ, "tw.apply(); tr.apply();"),
            precision=PRECISION_FLOW,
        )
        assert ("C.tw", "C.tr", ACTION_DEP) in edge_kinds(graph)

    def test_strict_components_agree_across_precisions(self):
        flay = Flay(
            _program(KILLED_READ, "tw.apply(); tr.apply();"),
            FlayOptions(target="none"),
        )
        syntactic = conflict_components(
            flay.model,
            flay.program,
            flay.env,
            strict=True,
            precision=PRECISION_SYNTACTIC,
        )
        flow = conflict_components(
            flay.model,
            flay.program,
            flay.env,
            strict=True,
            precision=PRECISION_FLOW,
        )
        as_groups = lambda comp: {
            frozenset(n for n, r in comp.items() if r == root)
            for root in set(comp.values())
        }
        assert as_groups(syntactic) == as_groups(flow)


# A hash extern writes its destination; the syntactic walk reads it.
HASH_WRITER = """
    action digest() { hash(meta.a, hdr.h.g); }
    action write_a(bit<8> v) { meta.a = v; }
    action noop() { }
    table th {
        key = { hdr.h.f: exact; }
        actions = { digest; noop; }
        default_action = noop();
    }
    table tw {
        key = { hdr.h.g: exact; }
        actions = { write_a; noop; }
        default_action = noop();
    }
"""


class TestExternDestinationWrite:
    def test_syntactic_misses_the_hazard(self):
        graph = build_dependency_graph(
            _program(HASH_WRITER, "th.apply(); tw.apply();"),
            precision=PRECISION_SYNTACTIC,
        )
        assert "meta.a" not in graph.nodes["C.th"].writes
        assert not any(
            e.src == "C.th" and e.dst == "C.tw" for e in graph.edges
        )

    def test_flow_adds_the_write_after_write_edge(self):
        graph = build_dependency_graph(
            _program(HASH_WRITER, "th.apply(); tw.apply();"),
            precision=PRECISION_FLOW,
        )
        assert "meta.a" in graph.nodes["C.th"].writes
        assert "meta.a" not in graph.nodes["C.th"].reads
        assert ("C.th", "C.tw", ACTION_DEP) in edge_kinds(graph)


# Two tables aliasing the same action declaration (satellite regression:
# the syntactic oracle and the flow analysis must agree on actions with
# no kills and no destination-writing externs).
ALIASED = """
    action shared(bit<8> v) { meta.b = meta.a + v; }
    action noop() { }
    table alias1 {
        key = { hdr.h.f: exact; }
        actions = { shared; noop; }
        default_action = noop();
    }
    table alias2 {
        key = { hdr.h.g: exact; }
        actions = { shared; noop; }
        default_action = noop();
    }
"""


class TestAliasedTables:
    def test_taint_sets_agree_between_oracle_and_flow(self):
        program = _program(ALIASED, "alias1.apply(); alias2.apply();")
        syntactic = build_dependency_graph(program, precision=PRECISION_SYNTACTIC)
        flow = build_dependency_graph(program, precision=PRECISION_FLOW)
        for name in ("C.alias1", "C.alias2"):
            assert syntactic.nodes[name].reads == flow.nodes[name].reads
            assert syntactic.nodes[name].writes == flow.nodes[name].writes
        assert edge_kinds(syntactic) == edge_kinds(flow)

    def test_aliased_tables_share_effects_but_not_identity(self):
        graph = build_dependency_graph(
            _program(ALIASED, "alias1.apply(); alias2.apply();"),
            precision=PRECISION_FLOW,
        )
        a1 = graph.nodes["C.alias1"]
        a2 = graph.nodes["C.alias2"]
        assert a1.writes == a2.writes == {"meta.b"}
        assert "meta.a" in a1.reads and "meta.a" in a2.reads

    def test_strict_components_agree_on_aliased_program(self):
        flay = Flay(
            _program(ALIASED, "alias1.apply(); alias2.apply();"),
            FlayOptions(target="none"),
        )
        for precision in (PRECISION_SYNTACTIC, PRECISION_FLOW):
            components = conflict_components(
                flay.model,
                flay.program,
                flay.env,
                strict=True,
                precision=precision,
            )
            # The shared write target meta.b links the aliases.
            assert components["C.alias1"] == components["C.alias2"]


class TestPrecisionPlumbing:
    def test_unknown_precision_is_rejected(self):
        program = _program(ALIASED, "alias1.apply(); alias2.apply();")
        with pytest.raises(ValueError):
            build_dependency_graph(program, precision="psychic")

    def test_default_precision_is_syntactic(self):
        # The historical call signature keeps its historical meaning;
        # flow is opt-in at the call sites that want it.
        program = _program(KILLED_READ, "tw.apply(); tr.apply();")
        default = build_dependency_graph(program)
        explicit = build_dependency_graph(program, precision=PRECISION_SYNTACTIC)
        assert edge_kinds(default) == edge_kinds(explicit)


class TestCorpusParity:
    @pytest.mark.parametrize("name", ["scion", "switch"])
    def test_strict_components_parity_on_corpus(self, name):
        # Measured result (see BENCH_8.json): on this corpus the flow
        # refinement changes per-action effect sets but not connectivity,
        # so the strict partitions coincide.  If a future edge-algebra
        # change lets flow precision split a group, this pin should be
        # updated alongside the benchmark.
        program = registry.load(name)
        model = analyze(program)
        syntactic = conflict_components(
            model, program, strict=True, precision=PRECISION_SYNTACTIC
        )
        flow = conflict_components(
            model, program, strict=True, precision=PRECISION_FLOW
        )
        as_groups = lambda comp: {
            frozenset(n for n, r in comp.items() if r == root)
            for root in set(comp.values())
        }
        assert as_groups(syntactic) == as_groups(flow)
