"""Tests for program metrics."""

from repro.ir import measure
from repro.p4.parser import parse_program
from repro.programs import registry


def _program(body: str, locals_: str = "") -> str:
    return f"""
header h_t {{ bit<8> f; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> m; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals_}
    apply {{ {body} }}
}}
Pipeline(P(), C()) main;
"""


class TestCounts:
    def test_empty_program(self):
        metrics = measure(parse_program(_program("")))
        assert metrics.statements == 0
        assert metrics.tables == 0
        assert metrics.parser_states == 1

    def test_statements_counted(self):
        metrics = measure(parse_program(_program("meta.m = 1; meta.m = 2;")))
        assert metrics.statements == 2

    def test_if_counts_as_statement_and_decision(self):
        metrics = measure(
            parse_program(_program("if (meta.m == 0) { meta.m = 1; }"))
        )
        assert metrics.if_statements == 1
        assert metrics.mccabe == 2
        assert metrics.statements == 2  # the if + the assignment

    def test_table_counts(self):
        locals_ = """
    action a(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.f: exact; }
        actions = { a; noop; }
        default_action = noop();
    }
"""
        metrics = measure(parse_program(_program("t.apply();", locals_)))
        assert metrics.tables == 1
        assert metrics.actions == 2
        assert metrics.keys == 1

    def test_register_counted(self):
        locals_ = "    register<bit<32>>(16) reg;"
        metrics = measure(parse_program(_program("", locals_)))
        assert metrics.registers == 1

    def test_paths_multiply_across_ifs(self):
        one = measure(parse_program(_program("if (meta.m == 0) { meta.m = 1; }")))
        two = measure(
            parse_program(
                _program(
                    "if (meta.m == 0) { meta.m = 1; }"
                    "if (meta.m == 1) { meta.m = 2; }"
                )
            )
        )
        assert two.control_paths == one.control_paths * 2

    def test_table_multiplies_paths_by_actions(self):
        locals_ = """
    action a(bit<8> v) { meta.m = v; }
    action b() { }
    action noop() { }
    table t {
        key = { hdr.h.f: exact; }
        actions = { a; b; noop; }
        default_action = noop();
    }
"""
        metrics = measure(parse_program(_program("t.apply();", locals_)))
        assert metrics.control_paths >= 3


class TestCorpusShape:
    def test_statement_counts_track_paper_table2(self):
        """Our corpus programs land within 5% of the paper's statement
        counts and preserve the ordering switch > scion > dash > middleblock."""
        counts = {}
        for name in registry.TABLE2_PROGRAMS:
            entry = registry.get(name)
            counts[name] = measure(entry.parse()).statements
            assert (
                abs(counts[name] - entry.paper_statements)
                <= 0.05 * entry.paper_statements
            ), f"{name}: {counts[name]} vs paper {entry.paper_statements}"
        assert counts["switch"] > counts["scion"] > counts["dash"] > counts["middleblock"]

    def test_sketches_are_small(self):
        for name in ("beaucoup", "accturbo", "dta"):
            assert measure(registry.load(name)).statements < 100
