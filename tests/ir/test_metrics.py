"""Tests for program metrics."""

from repro.ir import measure
from repro.p4.parser import parse_program
from repro.programs import registry


def _program(body: str, locals_: str = "") -> str:
    return f"""
header h_t {{ bit<8> f; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> m; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals_}
    apply {{ {body} }}
}}
Pipeline(P(), C()) main;
"""


class TestCounts:
    def test_empty_program(self):
        metrics = measure(parse_program(_program("")))
        assert metrics.statements == 0
        assert metrics.tables == 0
        assert metrics.parser_states == 1

    def test_statements_counted(self):
        metrics = measure(parse_program(_program("meta.m = 1; meta.m = 2;")))
        assert metrics.statements == 2

    def test_if_counts_as_statement_and_decision(self):
        metrics = measure(
            parse_program(_program("if (meta.m == 0) { meta.m = 1; }"))
        )
        assert metrics.if_statements == 1
        assert metrics.mccabe == 2
        assert metrics.statements == 2  # the if + the assignment

    def test_table_counts(self):
        locals_ = """
    action a(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.f: exact; }
        actions = { a; noop; }
        default_action = noop();
    }
"""
        metrics = measure(parse_program(_program("t.apply();", locals_)))
        assert metrics.tables == 1
        assert metrics.actions == 2
        assert metrics.keys == 1

    def test_register_counted(self):
        locals_ = "    register<bit<32>>(16) reg;"
        metrics = measure(parse_program(_program("", locals_)))
        assert metrics.registers == 1

    def test_paths_multiply_across_ifs(self):
        one = measure(parse_program(_program("if (meta.m == 0) { meta.m = 1; }")))
        two = measure(
            parse_program(
                _program(
                    "if (meta.m == 0) { meta.m = 1; }"
                    "if (meta.m == 1) { meta.m = 2; }"
                )
            )
        )
        assert two.control_paths == one.control_paths * 2

    def test_table_multiplies_paths_by_actions(self):
        locals_ = """
    action a(bit<8> v) { meta.m = v; }
    action b() { }
    action noop() { }
    table t {
        key = { hdr.h.f: exact; }
        actions = { a; b; noop; }
        default_action = noop();
    }
"""
        metrics = measure(parse_program(_program("t.apply();", locals_)))
        assert metrics.control_paths >= 3


class TestCorpusShape:
    def test_statement_counts_track_paper_table2(self):
        """Our corpus programs land within 5% of the paper's statement
        counts and preserve the ordering switch > scion > dash > middleblock."""
        counts = {}
        for name in registry.TABLE2_PROGRAMS:
            entry = registry.get(name)
            counts[name] = measure(entry.parse()).statements
            assert (
                abs(counts[name] - entry.paper_statements)
                <= 0.05 * entry.paper_statements
            ), f"{name}: {counts[name]} vs paper {entry.paper_statements}"
        assert counts["switch"] > counts["scion"] > counts["dash"] > counts["middleblock"]

    def test_sketches_are_small(self):
        for name in ("beaucoup", "accturbo", "dta"):
            assert measure(registry.load(name)).statements < 100


class TestCacheCounters:
    def test_counter_accumulates_and_rates(self):
        from repro.ir import CacheCounter

        counter = CacheCounter("demo")
        counter.hit(3)
        counter.miss()
        counter.invalidate(2)
        assert counter.lookups == 4
        assert counter.hit_rate == 0.75
        assert counter.invalidations == 2
        assert "demo" in counter.describe()

    def test_snapshot_and_since_give_deltas(self):
        from repro.ir import CacheCounter

        counter = CacheCounter("demo", hits=10, misses=5, invalidations=1)
        baseline = counter.snapshot()
        counter.hit(4)
        counter.miss(2)
        delta = counter.since(baseline)
        assert (delta.hits, delta.misses, delta.invalidations) == (4, 2, 0)
        # The snapshot is frozen: mutating the live counter left it alone.
        assert baseline.hits == 10

    def test_report_aggregates_and_describes(self):
        from repro.ir import CacheCounter, CacheReport

        report = CacheReport()
        report.add(CacheCounter("a", hits=2, misses=1))
        report.add(CacheCounter("b", hits=3, misses=0, invalidations=4))
        assert report.total_hits == 5
        assert report.total_misses == 1
        assert report.total_invalidations == 4
        assert report.get("b").hits == 3
        text = report.describe()
        assert "a" in text and "b" in text and "total" in text


class TestPipelineCacheStats:
    def test_warm_update_stream_reports_hits(self):
        from repro.core.incremental import IncrementalSpecializer
        from repro.runtime.entries import TableEntry, TernaryMatch
        from repro.runtime.semantics import INSERT, Update

        source = _program(
            "t.apply();",
            locals_="""
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
""",
        )
        runtime = IncrementalSpecializer(parse_program(source))
        for i in range(1, 6):
            entry = TableEntry((TernaryMatch(i, 0xFF),), "set", (i,), i)
            runtime.process_update(Update("t", INSERT, entry))
        report = runtime.cache_stats()
        names = [c.name for c in report.counters]
        assert names == [
            "substitution",
            "executability",
            "table-verdict",
            "solver-memo",
            "cnf-fragments",
            "active-entries",
        ]
        assert report.get("substitution").hits > 0
        assert report.get("active-entries").hits > 0
        assert report.total_hits > 0
