"""Tests for the P4 tokenizer."""

import pytest

from repro.p4.errors import LexError
from repro.p4.lexer import EOF, IDENT, INT, PUNCT, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != EOF]


class TestTokens:
    def test_identifiers_and_keywords_share_kind(self):
        tokens = kinds("table foo_bar2")
        assert tokens == [(IDENT, "table"), (IDENT, "foo_bar2")]

    def test_punctuation_maximal_munch(self):
        tokens = [t.text for t in tokenize("a<<b >= c != d &&& e && f ++ g") if t.kind == PUNCT]
        assert tokens == ["<<", ">=", "!=", "&&&", "&&", "++"]

    def test_decimal_literal(self):
        token = tokenize("1234")[0]
        assert token.kind == INT and token.value == 1234 and token.width is None

    def test_hex_literal(self):
        token = tokenize("0xDEAD")[0]
        assert token.value == 0xDEAD

    def test_binary_literal(self):
        token = tokenize("0b1010")[0]
        assert token.value == 10

    def test_width_prefixed_literal(self):
        token = tokenize("8w0xFF")[0]
        assert token.value == 255 and token.width == 8

    def test_width_prefixed_decimal(self):
        token = tokenize("9w256")[0]
        assert token.value == 256 and token.width == 9

    def test_underscored_literal(self):
        token = tokenize("1_000")[0]
        assert token.value == 1000

    def test_malformed_width_literal(self):
        with pytest.raises(LexError):
            tokenize("8wxyz")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == [(IDENT, "a"), (IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* multi\nline */ b") == [(IDENT, "a"), (IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_preprocessor_lines_skipped(self):
        assert kinds("#include <core.p4>\nheader") == [(IDENT, "header")]

    def test_positions_track_lines(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].pos.line == 1 and tokens[0].pos.column == 1
        assert tokens[1].pos.line == 2 and tokens[1].pos.column == 3

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == EOF
