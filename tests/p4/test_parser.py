"""Tests for the recursive-descent P4 parser."""

import pytest

from repro.p4 import ast_nodes as ast
from repro.p4.errors import ParseError
from repro.p4.parser import parse_expr, parse_program

MINIMAL = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    apply { }
}
Pipeline(P(), C()) main;
"""


class TestDeclarations:
    def test_minimal_program(self):
        program = parse_program(MINIMAL)
        assert program.pipeline.parser == "P"
        assert program.pipeline.controls == ("C",)
        assert [h.name for h in program.headers()] == ["h_t"]

    def test_typedef_and_const(self):
        program = parse_program(
            "typedef bit<48> mac_t;\nconst bit<16> ETH_IPV4 = 0x800;\n" + MINIMAL
        )
        td = program.find("mac_t")
        assert isinstance(td, ast.TypedefDecl)
        assert td.type == ast.BitType(48)
        cd = program.find("ETH_IPV4")
        assert isinstance(cd, ast.ConstDecl)

    def test_annotations_skipped(self):
        source = MINIMAL.replace("header h_t", '@name("h") header h_t')
        parse_program(source)

    def test_missing_apply_rejected(self):
        bad = MINIMAL.replace("apply { }", "")
        with pytest.raises(ParseError):
            parse_program(bad)

    def test_top_level_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_program("42;")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ParseError):
            parse_program("Pipeline() main;")

    def test_nested_angle_brackets_in_register(self):
        source = MINIMAL.replace(
            "apply { }",
            "apply { }",
        ).replace(
            "control C(inout headers_t hdr, inout meta_t meta) {",
            "control C(inout headers_t hdr, inout meta_t meta) {\n"
            "    register<bit<32>>(1024) counts;",
        )
        program = parse_program(source)
        control = program.find("C")
        regs = [l for l in control.locals if isinstance(l, ast.InstantiationDecl)]
        assert regs and regs[0].kind == "register"
        assert regs[0].type_args == (ast.BitType(32),)


class TestTables:
    SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.f: ternary; meta.m: exact; }
        actions = { set; noop; }
        default_action = set(8w3);
        size = 128;
    }
    apply { t.apply(); }
}
Pipeline(P(), C()) main;
"""

    def test_table_properties(self):
        program = parse_program(self.SOURCE)
        control = program.find("C")
        table = next(l for l in control.locals if isinstance(l, ast.TableDecl))
        assert [k.match_kind for k in table.keys] == ["ternary", "exact"]
        assert [a.name for a in table.actions] == ["set", "noop"]
        assert table.default_action.name == "set"
        assert len(table.default_action.args) == 1
        assert table.size == 128

    def test_unknown_match_kind_rejected(self):
        with pytest.raises(ParseError):
            parse_program(self.SOURCE.replace("ternary", "range"))

    def test_unknown_table_property_rejected(self):
        with pytest.raises(ParseError):
            parse_program(self.SOURCE.replace("size = 128;", "implementation = x;"))


class TestStatements:
    def _control(self, body):
        source = MINIMAL.replace("apply { }", f"apply {{ {body} }}")
        program = parse_program(source)
        return program.find("C").apply.statements

    def test_assignment(self):
        (stmt,) = self._control("meta.m = 8w1;")
        assert isinstance(stmt, ast.AssignStmt)

    def test_if_else_chain(self):
        (stmt,) = self._control(
            "if (meta.m == 0) { meta.m = 1; } else if (meta.m == 1) { meta.m = 2; }"
        )
        assert isinstance(stmt, ast.IfStmt)
        assert isinstance(stmt.orelse.statements[0], ast.IfStmt)

    def test_exit_and_return(self):
        stmts = self._control("exit; return;")
        assert isinstance(stmts[0], ast.ExitStmt)
        assert isinstance(stmts[1], ast.ReturnStmt)

    def test_local_variable(self):
        (stmt,) = self._control("bit<16> tmp = 16w9;")
        assert isinstance(stmt, ast.VarDeclStmt)
        assert stmt.type == ast.BitType(16)

    def test_method_call_statement(self):
        (stmt,) = self._control("mark_to_drop();")
        assert isinstance(stmt, ast.MethodCallStmt)

    def test_non_call_expression_statement_rejected(self):
        with pytest.raises(ParseError):
            self._control("meta.m;")

    def test_switch_statement(self):
        source = TestTables.SOURCE.replace(
            "apply { t.apply(); }",
            """apply {
                switch (t.apply().action_run) {
                    set: { meta.m = 1; }
                    default: { meta.m = 2; }
                }
            }""",
        )
        program = parse_program(source)
        (stmt,) = program.find("C").apply.statements
        assert isinstance(stmt, ast.SwitchStmt)
        assert stmt.table == "t"
        assert [case.action for case in stmt.cases] == ["set", None]

    def test_switch_requires_action_run(self):
        source = TestTables.SOURCE.replace(
            "apply { t.apply(); }",
            "apply { switch (t.apply().hit_run) { default: { } } }",
        )
        with pytest.raises(ParseError):
            parse_program(source)


class TestParserDecls:
    SOURCE = """
header h_t { bit<8> f; bit<16> t; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    value_set<bit<16>>(4) pvs;
    state start {
        pkt_extract(hdr.h);
        transition select(hdr.h.t, hdr.h.f) {
            (0x800, 4): next;
            (0x86DD &&& 0xFF00, default): next;
            (pvs, default): next;
            default: reject;
        }
    }
    state next { transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
Pipeline(P(), C()) main;
"""

    def test_select_cases(self):
        program = parse_program(self.SOURCE)
        parser = program.find("P")
        start = parser.states[0]
        select = start.transition
        assert isinstance(select, ast.TransitionSelect)
        assert len(select.exprs) == 2
        assert len(select.cases) == 4
        masked = select.cases[1].keys[0]
        assert masked.mask is not None
        pvs_case = select.cases[2].keys[0]
        assert pvs_case.value_set_name == "pvs"
        assert select.cases[3].keys[0].is_default

    def test_value_set_declared(self):
        program = parse_program(self.SOURCE)
        parser = program.find("P")
        (pvs,) = parser.locals
        assert isinstance(pvs, ast.ValueSetDecl)
        assert pvs.size == 4

    def test_arity_mismatch_rejected(self):
        bad = self.SOURCE.replace("(0x800, 4): next;", "0x800: next;")
        with pytest.raises(ParseError):
            parse_program(bad)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_compare_over_and(self):
        expr = parse_expr("a == b && c == d")
        assert expr.op == "&&"

    def test_parentheses(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"

    def test_ternary(self):
        expr = parse_expr("a == 0 ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_cast(self):
        expr = parse_expr("(bit<16>) x")
        assert isinstance(expr, ast.Cast)
        assert expr.type == ast.BitType(16)

    def test_slice(self):
        expr = parse_expr("x[7:4]")
        assert isinstance(expr, ast.Slice)
        assert expr.hi == 7 and expr.lo == 4

    def test_member_chain(self):
        expr = parse_expr("hdr.ipv4.ttl")
        assert isinstance(expr, ast.Member)
        assert expr.name == "ttl"

    def test_method_call_on_member(self):
        expr = parse_expr("hdr.ipv4.isValid()")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "isValid"

    def test_concat(self):
        expr = parse_expr("a ++ b")
        assert expr.op == "++"

    def test_unary(self):
        expr = parse_expr("~x & -y")
        assert expr.op == "&"
        assert isinstance(expr.left, ast.Unary)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a + b extra")
