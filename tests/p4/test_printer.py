"""Round-trip tests for the pretty-printer."""

import pytest

from repro.p4.parser import parse_expr, parse_program
from repro.p4.printer import print_expr, print_program
from repro.programs import registry


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(registry.CORPUS))
    def test_corpus_round_trips(self, name):
        """print(parse(print(parse(src)))) is a fixed point for every
        corpus program."""
        program = registry.load(name)
        text1 = print_program(program)
        program2 = parse_program(text1)
        text2 = print_program(program2)
        assert text1 == text2

    def test_expr_precedence_preserved(self):
        for source in (
            "a + b * c",
            "(a + b) * c",
            "a << 2 | b",
            "(a | b) & c",
            "a == 0 ? b : c + 1",
            "~x & y",
            "x[7:4] ++ y[3:0]",
        ):
            expr = parse_expr(source)
            reprinted = parse_expr(print_expr(expr))
            assert print_expr(reprinted) == print_expr(expr)

    def test_width_literals_preserved(self):
        expr = parse_expr("8w0xff + 8w1")
        text = print_expr(expr)
        assert "8w" in text
        assert print_expr(parse_expr(text)) == text
