"""Tests for the type environment and expression typing."""

import pytest

from repro.p4 import ast_nodes as ast
from repro.p4.errors import TypeCheckError
from repro.p4.parser import parse_expr, parse_program
from repro.p4.types import (
    TypeEnv,
    bit_width,
    eval_const_expr,
    lvalue_path,
    scope_for_params,
    type_of,
)

SOURCE = """
typedef bit<48> mac_t;
typedef mac_t mac_alias_t;
const bit<16> TYPE_IPV4 = 0x800;
const bit<16> DOUBLED = TYPE_IPV4 + TYPE_IPV4;
header eth_t { mac_t dst; mac_t src; bit<16> type; }
header ipv4_t { bit<8> ttl; bit<32> dst; }
struct headers_t { eth_t eth; ipv4_t ipv4; }
struct meta_t { bit<9> port; bool flag; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
Pipeline(P(), C()) main;
"""


@pytest.fixture(scope="module")
def env():
    return TypeEnv(parse_program(SOURCE))


@pytest.fixture(scope="module")
def scope(env):
    control = env.program.find("C")
    return scope_for_params(env, control.params)


class TestResolution:
    def test_typedef_chain(self, env):
        assert env.resolve(ast.NamedType("mac_alias_t")) == ast.BitType(48)

    def test_unknown_type(self, env):
        with pytest.raises(TypeCheckError):
            env.resolve(ast.NamedType("nope_t"))

    def test_width_of(self, env):
        assert env.width_of(ast.NamedType("mac_t")) == 48
        assert env.width_of(ast.BoolType()) == 1

    def test_struct_has_no_width(self, env):
        with pytest.raises(TypeCheckError):
            env.width_of(ast.NamedType("headers_t"))

    def test_kind_predicates(self, env):
        assert env.is_header_type(ast.NamedType("eth_t"))
        assert env.is_struct_type(ast.NamedType("headers_t"))
        assert not env.is_header_type(ast.NamedType("headers_t"))

    def test_constants_evaluated(self, env):
        assert env.constants["TYPE_IPV4"] == 0x800
        assert env.constants["DOUBLED"] == 0x1000

    def test_member_type(self, env):
        assert env.member_type(ast.NamedType("eth_t"), "type") == ast.BitType(16)
        with pytest.raises(TypeCheckError):
            env.member_type(ast.NamedType("eth_t"), "bogus")


class TestFlatten:
    def test_flatten_headers(self, env):
        fields = list(env.flatten("hdr", ast.NamedType("headers_t")))
        paths = {f.path: f.width for f in fields}
        assert paths["hdr.eth.dst"] == 48
        assert paths["hdr.ipv4.ttl"] == 8
        owners = {f.path: f.header for f in fields}
        assert owners["hdr.eth.dst"] == "hdr.eth"

    def test_flatten_metadata_has_no_header_owner(self, env):
        fields = list(env.flatten("meta", ast.NamedType("meta_t")))
        assert all(f.header is None for f in fields)

    def test_header_instances(self, env):
        instances = dict(env.header_instances("hdr", ast.NamedType("headers_t")))
        assert instances == {"hdr.eth": "eth_t", "hdr.ipv4": "ipv4_t"}


class TestTyping:
    def test_member_expression(self, scope):
        t = type_of(parse_expr("hdr.eth.type"), scope)
        assert t == ast.BitType(16)

    def test_comparison_is_bool(self, scope):
        assert type_of(parse_expr("hdr.ipv4.ttl == 0"), scope) == ast.BoolType()

    def test_concat_width(self, scope):
        assert bit_width(parse_expr("hdr.eth.type ++ hdr.ipv4.ttl"), scope) == 24

    def test_unsized_literal_needs_context(self, scope):
        with pytest.raises(TypeCheckError):
            bit_width(parse_expr("42"), scope)
        assert bit_width(parse_expr("42"), scope, context_width=16) == 16

    def test_binary_width_from_sized_side(self, scope):
        assert bit_width(parse_expr("hdr.ipv4.ttl + 1"), scope) == 8

    def test_isvalid_is_bool(self, scope):
        assert type_of(parse_expr("hdr.eth.isValid()"), scope) == ast.BoolType()

    def test_unknown_name(self, scope):
        with pytest.raises(TypeCheckError):
            type_of(parse_expr("mystery"), scope)


class TestLvaluePaths:
    def test_simple(self):
        assert lvalue_path(parse_expr("hdr.eth.dst")) == "hdr.eth.dst"

    def test_bare_name(self):
        assert lvalue_path(parse_expr("local")) == "local"

    def test_non_lvalue(self):
        with pytest.raises(TypeCheckError):
            lvalue_path(parse_expr("a + b"))


class TestConstEval:
    def test_arith(self, env):
        assert eval_const_expr(parse_expr("1 + 2 * 3"), env) == 7

    def test_named_constant(self, env):
        assert eval_const_expr(parse_expr("TYPE_IPV4"), env) == 0x800

    def test_bitwise(self, env):
        assert eval_const_expr(parse_expr("0xF0 | 0x0F"), env) == 0xFF
        assert eval_const_expr(parse_expr("1 << 4"), env) == 16

    def test_non_constant_returns_none(self, env):
        assert eval_const_expr(parse_expr("some_var"), env) is None
