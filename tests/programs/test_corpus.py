"""Tests over the full evaluation corpus."""

import pytest

from repro.analysis import analyze
from repro.ir import measure
from repro.p4.parser import parse_program
from repro.p4.types import TypeEnv
from repro.programs import registry
from repro.targets.tofino import allocate


@pytest.mark.parametrize("name", sorted(registry.CORPUS))
class TestEveryProgram:
    def test_parses(self, name):
        program = registry.load(name)
        assert program.pipeline.parser

    def test_types_resolve(self, name):
        program = registry.load(name)
        env = TypeEnv(program)
        for decl in program.parsers() + program.controls():
            for param in decl.params:
                env.resolve(param.type)

    def test_analyzes(self, name):
        entry = registry.get(name)
        model = analyze(entry.parse(), skip_parser=entry.skip_parser)
        assert model.point_count > 0

    def test_allocates(self, name):
        report = allocate(registry.load(name))
        assert report.stages_used >= 1


class TestTableShapes:
    def test_scion_has_parallel_v4_v6_paths(self):
        program = registry.load("scion")
        text = registry.get("scion").source()
        assert "ipv4_forward" in text and "ipv6_forward" in text
        assert "acl_v4" in text and "acl_v6" in text

    def test_middleblock_acl_is_wide(self):
        """Table 3 depends on the pre-ingress ACL having many ternary keys."""
        from repro.programs.middleblock import PRE_INGRESS_ACL

        model = analyze(registry.load("middleblock"))
        info = model.tables[PRE_INGRESS_ACL]
        assert len(info.keys) >= 6
        assert all(k.match_kind == "ternary" for k in info.keys)
        assert sum(k.width for k in info.keys) > 150

    def test_sketches_use_registers(self):
        for name in ("beaucoup", "dta"):
            assert measure(registry.load(name)).registers >= 1

    def test_registry_lookups(self):
        assert registry.get("scion").name == "scion"
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_table1_and_table2_program_sets(self):
        assert set(registry.TABLE1_PROGRAMS) <= set(registry.CORPUS)
        assert set(registry.TABLE2_PROGRAMS) <= set(registry.CORPUS)
