"""Tests for JSON control-plane configurations."""

import pytest

from repro.runtime import config as config_mod
from repro.runtime.config import ConfigError, Configuration, parse_int
from repro.runtime.entries import ExactMatch, LpmMatch, TernaryMatch
from repro.runtime.semantics import ValueSetUpdate


class TestParseInt:
    def test_plain_int(self):
        assert parse_int(42) == 42

    def test_hex_string(self):
        assert parse_int("0xFF") == 255

    def test_decimal_string(self):
        assert parse_int("100") == 100

    def test_dotted_quad(self):
        assert parse_int("10.0.0.1") == 0x0A000001

    def test_bad_quad(self):
        with pytest.raises(ConfigError):
            parse_int("10.0.0.999")

    def test_garbage(self):
        with pytest.raises(ConfigError):
            parse_int("abc")
        with pytest.raises(ConfigError):
            parse_int(True)


class TestLoads:
    def test_full_config(self):
        config = config_mod.loads(
            """
            {
              "tables": {
                "C.acl": [
                  {"match": [{"ternary": ["0x0A000000", "0xFF000000"]}],
                   "action": "deny", "args": [], "priority": 10},
                  {"match": [{"exact": "10.0.0.1"}],
                   "action": "permit", "args": ["3"]}
                ],
                "C.routes": [
                  {"match": [{"lpm": ["10.0.0.0", 8]}], "action": "fwd", "args": [1]}
                ]
              },
              "value_sets": {"P.pvs": ["0x800"]}
            }
            """
        )
        assert config.entry_count == 3
        acl = config.table_entries["C.acl"]
        assert isinstance(acl[0].matches[0], TernaryMatch)
        assert acl[0].priority == 10
        assert isinstance(acl[1].matches[0], ExactMatch)
        assert acl[1].matches[0].value == 0x0A000001
        route = config.table_entries["C.routes"][0]
        assert isinstance(route.matches[0], LpmMatch)
        assert route.matches[0].prefix_len == 8
        assert config.value_sets["P.pvs"] == (0x800,)

    def test_updates_flatten(self):
        config = config_mod.loads(
            '{"tables": {"t": [{"match": [{"exact": 1}], "action": "a"}]},'
            ' "value_sets": {"v": [2]}}'
        )
        updates = config.updates()
        assert len(updates) == 2
        assert isinstance(updates[1], ValueSetUpdate)

    def test_bad_json(self):
        with pytest.raises(ConfigError):
            config_mod.loads("{not json")

    def test_unknown_section(self):
        with pytest.raises(ConfigError):
            config_mod.loads('{"meters": {}}')

    def test_missing_action(self):
        with pytest.raises(ConfigError):
            config_mod.loads('{"tables": {"t": [{"match": []}]}}')

    def test_bad_match_shape(self):
        with pytest.raises(ConfigError):
            config_mod.loads(
                '{"tables": {"t": [{"match": [{"ternary": [1]}], "action": "a"}]}}'
            )
        with pytest.raises(ConfigError):
            config_mod.loads(
                '{"tables": {"t": [{"match": [{"range": [1, 2]}], "action": "a"}]}}'
            )

    def test_round_trip(self):
        text = (
            '{"tables": {"t": [{"match": [{"exact": "0x2a"}, {"lpm": ["0x0a000000", 8]}],'
            ' "action": "a", "args": ["0x7"], "priority": 3}]},'
            ' "value_sets": {"v": ["0x800"]}}'
        )
        config = config_mod.loads(text)
        again = config_mod.loads(config_mod.dumps(config))
        assert again.table_entries == config.table_entries
        assert again.value_sets == config.value_sets
