"""Tests for table entries, match kinds, and coverage rules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze
from repro.p4.parser import parse_program
from repro.runtime.entries import (
    EntryError,
    ExactMatch,
    LpmMatch,
    TableEntry,
    TernaryMatch,
    as_value_mask,
    match_covers,
    match_hits,
    validate_entry,
)

SOURCE = """
header h_t { bit<8> f; bit<32> ip; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table exact_t {
        key = { hdr.h.f: exact; }
        actions = { set; noop; }
        default_action = noop();
    }
    table ternary_t {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table lpm_t {
        key = { hdr.h.ip: lpm; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply { exact_t.apply(); ternary_t.apply(); lpm_t.apply(); }
}
Pipeline(P(), C()) main;
"""


@pytest.fixture(scope="module")
def model():
    return analyze(parse_program(SOURCE))


class TestValidation:
    def test_valid_exact(self, model):
        info = model.table("exact_t")
        validate_entry(info, TableEntry((ExactMatch(5),), "set", (1,)))

    def test_wrong_match_count(self, model):
        info = model.table("exact_t")
        with pytest.raises(EntryError):
            validate_entry(info, TableEntry((), "set", (1,)))

    def test_value_out_of_range(self, model):
        info = model.table("exact_t")
        with pytest.raises(EntryError):
            validate_entry(info, TableEntry((ExactMatch(256),), "set", (1,)))

    def test_unknown_action(self, model):
        info = model.table("exact_t")
        with pytest.raises(EntryError):
            validate_entry(info, TableEntry((ExactMatch(1),), "bogus", ()))

    def test_wrong_arg_count(self, model):
        info = model.table("exact_t")
        with pytest.raises(EntryError):
            validate_entry(info, TableEntry((ExactMatch(1),), "set", ()))

    def test_arg_out_of_range(self, model):
        info = model.table("exact_t")
        with pytest.raises(EntryError):
            validate_entry(info, TableEntry((ExactMatch(1),), "set", (256,)))

    def test_ternary_on_exact_key_rejected(self, model):
        info = model.table("exact_t")
        with pytest.raises(EntryError):
            validate_entry(
                info, TableEntry((TernaryMatch(1, 0xFF),), "set", (1,), priority=1)
            )

    def test_exact_allowed_on_ternary_key(self, model):
        info = model.table("ternary_t")
        validate_entry(info, TableEntry((ExactMatch(3),), "set", (1,)))

    def test_lpm_prefix_bounds(self, model):
        info = model.table("lpm_t")
        validate_entry(info, TableEntry((LpmMatch(0x0A000000, 8),), "set", (1,)))
        with pytest.raises(EntryError):
            validate_entry(info, TableEntry((LpmMatch(0, 33),), "set", (1,)))


class TestMatchSemantics:
    def test_exact_hits(self):
        assert match_hits(ExactMatch(5), 5, 8)
        assert not match_hits(ExactMatch(5), 6, 8)

    def test_ternary_mask(self):
        match = TernaryMatch(0b1010_0000, 0b1111_0000)
        assert match_hits(match, 0b1010_1111, 8)
        assert not match_hits(match, 0b1011_0000, 8)

    def test_wildcard_matches_everything(self):
        match = TernaryMatch(0, 0)
        for value in (0, 1, 255):
            assert match_hits(match, value, 8)

    def test_lpm_prefix(self):
        match = LpmMatch(0x0A000000, 8)
        assert match_hits(match, 0x0A123456, 32)
        assert not match_hits(match, 0x0B000000, 32)

    def test_zero_length_prefix_matches_all(self):
        assert match_hits(LpmMatch(0, 0), 0xFFFFFFFF, 32)

    def test_as_value_mask(self):
        assert as_value_mask(ExactMatch(5), 8) == (5, 0xFF)
        assert as_value_mask(TernaryMatch(5, 0x0F), 8) == (5, 0x0F)
        assert as_value_mask(LpmMatch(0xA0, 4), 8) == (0xA0, 0xF0)


class TestCoverage:
    def test_exact_covers_itself(self):
        assert match_covers(ExactMatch(5), ExactMatch(5), 8)
        assert not match_covers(ExactMatch(5), ExactMatch(6), 8)

    def test_wildcard_covers_exact(self):
        assert match_covers(TernaryMatch(0, 0), ExactMatch(5), 8)

    def test_exact_does_not_cover_wildcard(self):
        assert not match_covers(ExactMatch(5), TernaryMatch(0, 0), 8)

    def test_shorter_prefix_covers_longer(self):
        short = LpmMatch(0x0A000000, 8)
        long = LpmMatch(0x0A0B0000, 16)
        assert match_covers(short, long, 32)
        assert not match_covers(long, short, 32)

    def test_disagreeing_prefixes_dont_cover(self):
        a = LpmMatch(0x0A000000, 8)
        b = LpmMatch(0x0B000000, 8)
        assert not match_covers(a, b, 32)


@given(
    value=st.integers(0, 255),
    mask=st.integers(0, 255),
    key=st.integers(0, 255),
)
@settings(max_examples=300, deadline=None)
def test_coverage_implies_matching(value, mask, key):
    """If outer covers inner, any key inner matches, outer matches too."""
    outer = TernaryMatch(value, mask)
    inner = TernaryMatch(key, 0xFF)  # point match
    if match_covers(outer, inner, 8) and match_hits(inner, key, 8):
        assert match_hits(outer, key, 8)


class TestEntryKeys:
    def test_match_key_ignores_action(self):
        a = TableEntry((ExactMatch(1),), "set", (1,))
        b = TableEntry((ExactMatch(1),), "noop", ())
        assert a.match_key() == b.match_key()

    def test_priority_part_of_key(self):
        a = TableEntry((TernaryMatch(1, 0xFF),), "set", (1,), priority=1)
        b = TableEntry((TernaryMatch(1, 0xFF),), "set", (1,), priority=2)
        assert a.match_key() != b.match_key()
