"""Tests for the control-plane entry fuzzer."""

import pytest

from repro.analysis import analyze
from repro.p4.parser import parse_program
from repro.runtime.entries import LpmMatch, validate_entry
from repro.runtime.fuzzer import EntryFuzzer, ipv4_route_entries
from repro.runtime.semantics import ControlPlaneState, INSERT

SOURCE = """
header h_t { bit<8> f; bit<32> ip; bit<16> port; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action fwd(bit<9> port) { meta.m = (bit<8>) port; }
    action noop() { }
    table routes {
        key = { hdr.h.ip: lpm; }
        actions = { fwd; noop; }
        default_action = noop();
    }
    table acl {
        key = { hdr.h.ip: ternary; hdr.h.port: ternary; }
        actions = { fwd; noop; }
        default_action = noop();
    }
    apply { routes.apply(); acl.apply(); }
}
Pipeline(P(), C()) main;
"""


@pytest.fixture(scope="module")
def model():
    return analyze(parse_program(SOURCE))


class TestFuzzer:
    def test_entries_are_valid(self, model):
        fuzzer = EntryFuzzer(model, seed=1)
        for table in ("routes", "acl"):
            info = model.table(table)
            for _ in range(50):
                validate_entry(info, fuzzer.entry(table))

    def test_unique_entries_distinct(self, model):
        fuzzer = EntryFuzzer(model, seed=2)
        entries = fuzzer.unique_entries("acl", 200)
        keys = {e.match_key() for e in entries}
        assert len(keys) == 200

    def test_action_filter(self, model):
        fuzzer = EntryFuzzer(model, seed=3)
        entries = fuzzer.unique_entries("routes", 20, action="fwd")
        assert all(e.action == "fwd" for e in entries)

    def test_deterministic_with_seed(self, model):
        a = EntryFuzzer(model, seed=7).unique_entries("acl", 10)
        b = EntryFuzzer(model, seed=7).unique_entries("acl", 10)
        assert a == b

    def test_burst_is_installable(self, model):
        fuzzer = EntryFuzzer(model, seed=4)
        state = ControlPlaneState(model)
        for update in fuzzer.insert_burst("routes", 100):
            assert update.op == INSERT
            state.apply_update(update)
        assert len(state.table_state("routes")) == 100

    def test_aliased_table_names_share_liveness(self, model):
        """Regression: requesting one table under both its local and
        qualified name used to give it two independent live-key maps, so a
        skewed modify/delete mix could emit an update against a key the
        other alias had already inserted or deleted — replay would raise
        ``EntryError: duplicate entry``.  Canonicalization makes the alias
        pair equivalent to requesting the table once."""
        for seed in range(60):
            fuzzer = EntryFuzzer(model, seed=seed)
            stream = fuzzer.update_stream(
                tables=["routes", "C.routes"],
                count=50,
                modify_fraction=0.9,
                delete_fraction=0.5,
            )
            state = ControlPlaneState(model)
            for update in stream:  # EntryError here would fail the test
                state.apply_update(update)

    def test_aliased_request_matches_single_request(self, model):
        a = EntryFuzzer(model, seed=17).update_stream(
            tables=["routes"], count=30
        )
        b = EntryFuzzer(model, seed=17).update_stream(
            tables=["routes", "C.routes"], count=30
        )
        assert a == b

    def test_skewed_fractions_are_normalized(self, model):
        """modify+delete fractions summing past 1.0 must bias the mix, not
        starve inserts entirely (the stream would never terminate)."""
        fuzzer = EntryFuzzer(model, seed=23)
        stream = fuzzer.update_stream(
            tables=["acl"], count=40, modify_fraction=1.2, delete_fraction=0.9
        )
        assert len(stream) == 40
        state = ControlPlaneState(model)
        for update in stream:
            state.apply_update(update)

    def test_ipv4_route_generator(self, model):
        entries = list(ipv4_route_entries(model, "routes", 50, "fwd", seed=5))
        assert len(entries) == 50
        assert len({e.match_key() for e in entries}) == 50
        for entry in entries:
            (match,) = entry.matches
            assert isinstance(match, LpmMatch)
            # Value must be aligned to its prefix mask.
            assert match.value & ~match.mask(32) == 0
