"""Tests for control-plane semantics: entry stores and the encoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze
from repro.p4.parser import parse_program
from repro.runtime.entries import (
    EntryError,
    ExactMatch,
    LpmMatch,
    TableEntry,
    TernaryMatch,
    match_hits,
)
from repro.runtime.semantics import (
    DELETE,
    INSERT,
    MODIFY,
    ControlPlaneState,
    Update,
    ValueSetUpdate,
    encode_all,
    encode_table,
    encode_value_set,
    entry_match_term,
)
from repro.smt import evaluate, simplify, substitute, terms as T

SOURCE = """
header h_t { bit<8> f; bit<32> ip; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table tern {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    table routes {
        key = { hdr.h.ip: lpm; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply { tern.apply(); routes.apply(); }
}
Pipeline(P(), C()) main;
"""


@pytest.fixture()
def model():
    return analyze(parse_program(SOURCE))


@pytest.fixture()
def state(model):
    return ControlPlaneState(model)


def tern_entry(value, mask, action="set", args=(1,), priority=0):
    return TableEntry((TernaryMatch(value, mask),), action, args, priority)


class TestUpdateOps:
    def test_insert_and_len(self, state):
        state.apply_update(Update("tern", INSERT, tern_entry(1, 0xFF)))
        assert len(state.table_state("tern")) == 1

    def test_duplicate_insert_rejected(self, state):
        entry = tern_entry(1, 0xFF)
        state.apply_update(Update("tern", INSERT, entry))
        with pytest.raises(EntryError):
            state.apply_update(Update("tern", INSERT, entry))

    def test_modify_replaces_action_data(self, state):
        state.apply_update(Update("tern", INSERT, tern_entry(1, 0xFF, args=(1,))))
        state.apply_update(Update("tern", MODIFY, tern_entry(1, 0xFF, args=(9,))))
        (entry,) = state.table_state("tern").entries()
        assert entry.args == (9,)

    def test_modify_missing_rejected(self, state):
        with pytest.raises(EntryError):
            state.apply_update(Update("tern", MODIFY, tern_entry(1, 0xFF)))

    def test_delete(self, state):
        entry = tern_entry(1, 0xFF)
        state.apply_update(Update("tern", INSERT, entry))
        state.apply_update(Update("tern", DELETE, entry))
        assert len(state.table_state("tern")) == 0

    def test_delete_missing_rejected(self, state):
        with pytest.raises(EntryError):
            state.apply_update(Update("tern", DELETE, tern_entry(1, 0xFF)))

    def test_update_counter(self, state):
        state.apply_update(Update("tern", INSERT, tern_entry(1, 0xFF)))
        assert state.update_count == 1


class TestOrderingAndEclipse:
    def test_ternary_priority_order(self, state):
        low = tern_entry(0, 0, priority=1)
        high = tern_entry(5, 0xFF, priority=10)
        state.apply_update(Update("tern", INSERT, low))
        state.apply_update(Update("tern", INSERT, high))
        ordered = state.table_state("tern").ordered_entries()
        assert ordered[0] is high

    def test_lpm_longest_prefix_first(self, state):
        short = TableEntry((LpmMatch(0x0A000000, 8),), "set", (1,))
        long = TableEntry((LpmMatch(0x0A0B0000, 16),), "set", (2,))
        state.apply_update(Update("routes", INSERT, short))
        state.apply_update(Update("routes", INSERT, long))
        ordered = state.table_state("routes").ordered_entries()
        assert ordered[0] is long

    def test_eclipsed_entry_elided(self, state):
        wildcard = tern_entry(0, 0, priority=10)  # covers everything
        point = tern_entry(5, 0xFF, priority=1)
        state.apply_update(Update("tern", INSERT, wildcard))
        state.apply_update(Update("tern", INSERT, point))
        active = state.table_state("tern").active_entries()
        assert active == [wildcard]

    def test_non_eclipsed_entries_kept(self, state):
        a = tern_entry(0xF0, 0xF0, priority=10)
        b = tern_entry(0x05, 0xFF, priority=1)
        state.apply_update(Update("tern", INSERT, a))
        state.apply_update(Update("tern", INSERT, b))
        assert len(state.table_state("tern").active_entries()) == 2


class TestEncoding:
    def test_empty_table_selects_default(self, model, state):
        info = model.table("tern")
        assignment = encode_table(info, state.table_state("tern"))
        selector = assignment.mapping[info.selector_var]
        assert selector is T.bv_const(info.action_codes["noop"], 8)
        hit = assignment.mapping[info.hit_var]
        assert hit is T.bv_const(0, 1)

    def test_single_entry_encoding(self, model, state):
        info = model.table("tern")
        state.apply_update(Update("tern", INSERT, tern_entry(0x42, 0xFF, args=(7,))))
        assignment = encode_table(info, state.table_state("tern"))
        selector = assignment.mapping[info.selector_var]
        key_name = info.keys[0].term.name
        assert evaluate(selector, {key_name: 0x42}) == info.action_codes["set"]
        assert evaluate(selector, {key_name: 0x43}) == info.action_codes["noop"]
        param = assignment.mapping[info.action_params["set"][0].var]
        assert evaluate(param, {key_name: 0x42}) == 7

    def test_priority_respected_in_selector(self, model, state):
        info = model.table("tern")
        state.apply_update(
            Update("tern", INSERT, tern_entry(0, 0, action="noop", args=(), priority=1))
        )
        state.apply_update(
            Update("tern", INSERT, tern_entry(0x10, 0xFF, args=(2,), priority=10))
        )
        assignment = encode_table(info, state.table_state("tern"))
        selector = assignment.mapping[info.selector_var]
        key_name = info.keys[0].term.name
        assert evaluate(selector, {key_name: 0x10}) == info.action_codes["set"]
        assert evaluate(selector, {key_name: 0x11}) == info.action_codes["noop"]

    def test_default_action_args_as_fallback(self):
        source = SOURCE.replace("default_action = noop();", "default_action = set(8w9);", 1)
        model = analyze(parse_program(source))
        state = ControlPlaneState(model)
        info = model.table("tern")
        assignment = encode_table(info, state.table_state("tern"))
        param = assignment.mapping[info.action_params["set"][0].var]
        assert param is T.bv_const(9, 8)

    def test_overapproximation_past_threshold(self, model, state):
        info = model.table("tern")
        for i in range(5):
            state.apply_update(Update("tern", INSERT, tern_entry(i, 0xFF, priority=i + 1)))
        assignment = encode_table(info, state.table_state("tern"), threshold=3)
        assert assignment.overapproximated
        selector = assignment.mapping[info.selector_var]
        assert selector.is_data_var  # "*any*"

    def test_threshold_none_never_overapproximates(self, model, state):
        info = model.table("tern")
        for i in range(10):
            state.apply_update(Update("tern", INSERT, tern_entry(i, 0xFF, priority=i + 1)))
        assignment = encode_table(info, state.table_state("tern"), threshold=None)
        assert not assignment.overapproximated

    def test_encode_all_covers_every_control_var(self, model, state):
        mapping = encode_all(model, state)
        for info in model.tables.values():
            assert info.selector_var in mapping
            assert info.hit_var in mapping


class TestValueSets:
    SOURCE = """
header h_t { bit<16> tag; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    value_set<bit<16>>(2) pvs;
    state start {
        pkt_extract(hdr.h);
        transition select(hdr.h.tag) {
            pvs: special;
            default: accept;
        }
    }
    state special { transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
Pipeline(P(), C()) main;
"""

    def test_encode_value_set(self):
        model = analyze(parse_program(self.SOURCE))
        info = model.value_set("pvs")
        mapping = encode_value_set(info, [0x800])
        assert mapping[info.valid_vars[0]] is T.bv_const(1, 1)
        assert mapping[info.value_vars[0]] is T.bv_const(0x800, 16)
        assert mapping[info.valid_vars[1]] is T.bv_const(0, 1)

    def test_oversize_config_rejected(self):
        model = analyze(parse_program(self.SOURCE))
        state = ControlPlaneState(model)
        with pytest.raises(EntryError):
            state.apply_value_set_update(ValueSetUpdate("pvs", (1, 2, 3)))


# -- the key agreement property ------------------------------------------------


_SHARED_MODEL = analyze(parse_program(SOURCE))


@given(
    value=st.integers(0, 255),
    mask=st.integers(0, 255),
    key=st.integers(0, 255),
)
@settings(max_examples=200, deadline=None)
def test_match_term_agrees_with_match_hits(value, mask, key):
    """The symbolic entry-match term and the concrete matcher agree —
    this ties the incremental engine's world to the interpreter's."""
    info = _SHARED_MODEL.table("tern")
    entry = tern_entry(value, mask)
    term = entry_match_term(info, entry)
    key_name = info.keys[0].term.name
    assert evaluate(term, {key_name: key}) == int(
        match_hits(entry.matches[0], key, 8)
    )
