"""Tests for the synthetic input-change traces (Fig. 1 substrate)."""

from repro.runtime.trace import (
    DEFAULT_MEAN_INTERVALS,
    PACKET_ARRIVAL,
    POLICY_CHANGE,
    ROUTE_CHANGE,
    SOURCE_CHANGE,
    control_plane_trace,
    generate_events,
    measure_classes,
)


class TestGeneration:
    def test_events_sorted_within_duration(self):
        events = list(
            generate_events(ROUTE_CHANGE, 100.0, 5.0, seed=1)
        )
        assert events
        assert all(0 <= e.time < 100.0 for e in events)

    def test_bursts_share_burst_id(self):
        events = list(
            generate_events(ROUTE_CHANGE, 500.0, 50.0, burst_size=10, burst_spread=1.0, seed=2)
        )
        from collections import Counter

        counts = Counter(e.burst_id for e in events)
        assert max(counts.values()) > 1  # bursts fan out

    def test_deterministic_by_seed(self):
        a = list(generate_events(POLICY_CHANGE, 1000.0, 100.0, seed=3))
        b = list(generate_events(POLICY_CHANGE, 1000.0, 100.0, seed=3))
        assert a == b

    def test_control_plane_trace_is_time_ordered(self):
        events = control_plane_trace(duration=600.0, seed=1)
        times = [e.time for e in events]
        assert times == sorted(times)
        kinds = {e.kind for e in events}
        assert ROUTE_CHANGE in kinds


class TestFig1Shape:
    def test_rate_spread_matches_figure(self):
        """The four input classes sit in the Fig. 1 order, spanning many
        orders of magnitude from source changes (slow) to packets (fast)."""
        stats = {s.kind: s for s in measure_classes(seed=4)}
        assert set(stats) == {
            SOURCE_CHANGE, POLICY_CHANGE, ROUTE_CHANGE, PACKET_ARRIVAL,
        }
        assert (
            stats[SOURCE_CHANGE].rate_hz
            < stats[POLICY_CHANGE].rate_hz
            < stats[ROUTE_CHANGE].rate_hz
            < stats[PACKET_ARRIVAL].rate_hz
        )
        # The endpoints are >= 12 orders of magnitude apart.
        ratio = stats[PACKET_ARRIVAL].rate_hz / stats[SOURCE_CHANGE].rate_hz
        assert ratio > 1e12

    def test_routing_is_bursty(self):
        stats = {s.kind: s for s in measure_classes(seed=5)}
        # Coefficient of variation well above 1 indicates bursts.
        assert stats[ROUTE_CHANGE].cv_interval > 1.5
        assert stats[PACKET_ARRIVAL].cv_interval < 1.5

    def test_default_intervals_ordered(self):
        assert (
            DEFAULT_MEAN_INTERVALS[SOURCE_CHANGE]
            > DEFAULT_MEAN_INTERVALS[POLICY_CHANGE]
            > DEFAULT_MEAN_INTERVALS[ROUTE_CHANGE]
            > DEFAULT_MEAN_INTERVALS[PACKET_ARRIVAL]
        )
