"""Seeded trace determinism: same seed ⇒ same trace, everywhere.

Regression for the ``random.Random((seed, kind).__hash__())`` seeding
scheme, which leaked ``PYTHONHASHSEED`` into every trace: identical
seeds produced different traces between interpreter runs.  Fleet replay
(and any cross-machine comparison of replay results) requires the trace
to be a pure function of its arguments, so these tests pin it — in
process, across processes, and across *differing* hash seeds.
"""

import subprocess
import sys

import pytest

from repro.runtime.trace import (
    ROUTE_CHANGE,
    control_plane_trace,
    fleet_trace,
    generate_events,
)

_CHILD = """
from repro.runtime.trace import control_plane_trace, fleet_trace, generate_events, ROUTE_CHANGE
print(repr([
    [(e.time, e.kind, e.burst_id) for e in generate_events(ROUTE_CHANGE, 200.0, 10.0, seed=7)],
    [(e.time, e.kind) for e in control_plane_trace(duration=300.0, seed=7)],
    [(e.time, e.switch, e.kind, e.burst_id, e.members)
     for e in fleet_trace(6, duration=300.0, mean_interval=20.0, seed=7)],
]))
"""


def _child_trace(hashseed: str) -> str:
    import os

    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    result = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return result.stdout


class TestSeedStability:
    def test_fleet_trace_same_seed_same_trace(self):
        a = fleet_trace(8, duration=400.0, mean_interval=25.0, seed=13)
        b = fleet_trace(8, duration=400.0, mean_interval=25.0, seed=13)
        assert a == b
        assert a  # non-degenerate

    def test_fleet_trace_different_seed_differs(self):
        a = fleet_trace(8, duration=400.0, mean_interval=25.0, seed=13)
        b = fleet_trace(8, duration=400.0, mean_interval=25.0, seed=14)
        assert a != b

    def test_trace_is_identical_across_hash_randomized_processes(self):
        # The actual regression: three interpreters with three different
        # string-hash seeds must emit byte-identical traces.
        outputs = {_child_trace(seed) for seed in ("0", "1", "12345")}
        assert len(outputs) == 1

    def test_parent_agrees_with_children(self):
        expected = repr(
            [
                [
                    (e.time, e.kind, e.burst_id)
                    for e in generate_events(ROUTE_CHANGE, 200.0, 10.0, seed=7)
                ],
                [(e.time, e.kind) for e in control_plane_trace(duration=300.0, seed=7)],
                [
                    (e.time, e.switch, e.kind, e.burst_id, e.members)
                    for e in fleet_trace(
                        6, duration=300.0, mean_interval=20.0, seed=7
                    )
                ],
            ]
        )
        assert _child_trace("54321").strip() == expected


class TestFleetTraceShape:
    def test_sorted_by_time_then_switch(self):
        events = fleet_trace(6, duration=500.0, mean_interval=20.0, seed=2)
        keys = [(e.time, e.switch) for e in events]
        assert keys == sorted(keys)

    def test_zero_correlation_is_independent_churn(self):
        events = fleet_trace(
            6, duration=500.0, mean_interval=20.0, correlation=0.0, seed=2
        )
        assert all(len(e.members) == 1 for e in events)

    def test_full_correlation_is_lockstep(self):
        events = fleet_trace(
            5,
            duration=500.0,
            mean_interval=20.0,
            correlation=1.0,
            propagation_spread=0.0,
            seed=2,
        )
        assert events
        assert all(set(e.members) == set(range(5)) for e in events)

    def test_members_shared_across_burst(self):
        events = fleet_trace(6, duration=500.0, mean_interval=15.0, seed=4)
        by_burst = {}
        for event in events:
            by_burst.setdefault(event.burst_id, set()).add(event.members)
        assert all(len(members) == 1 for members in by_burst.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            fleet_trace(0)
        with pytest.raises(ValueError):
            fleet_trace(4, correlation=1.5)
        with pytest.raises(ValueError):
            fleet_trace(4, correlation=-0.1)
