"""Property tests for the flat-array term/CNF arenas.

The arenas exist to carry solver state across a process boundary, so the
properties under test are exactly the transport contract the batch
scheduler's process executor relies on:

* **interning identity** — ``arena.decode(arena.encode(t)) is t``, and
  the identity survives pickling the arena (the decoded-``Term`` cache
  is process-local and rebuilt through the default factory);
* **walker agreement** — the arena's array-native ``substitute`` and
  ``simplify`` produce the same canonical term as the object-graph
  passes, on random terms;
* **clause transport** — ``ClauseArena`` and ``SatSolver.snapshot`` blobs
  round-trip through pickle without changing what the solver believes.
"""

import pickle
import random

from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.arena import ClauseArena, TermArena
from repro.smt.sat import SAT, UNSAT, SatSolver
from repro.smt.simplify import simplify
from repro.smt.substitute import substitute

X = T.data_var("ax", 8)
Y = T.data_var("ay", 8)
C = T.control_var("ac", 8)
P = T.bool_var("ap")
Q = T.bool_var("aq")


def c(v, w=8):
    return T.bv_const(v, w)


@st.composite
def bv_terms(draw, depth=0):
    """Random 8-bit terms over data, control, and boolean variables."""
    if depth > 3 or draw(st.booleans()):
        return draw(
            st.sampled_from(
                [X, Y, C, c(0), c(1), c(0xFF), c(draw(st.integers(0, 255)))]
            )
        )
    op = draw(
        st.sampled_from(
            ["add", "sub", "mul", "and", "or", "xor", "not", "neg",
             "shl", "lshr", "concat_extract", "ite"]
        )
    )
    a = draw(bv_terms(depth=depth + 1))
    if op == "not":
        return T.bv_not(a)
    if op == "neg":
        return T.neg(a)
    if op == "concat_extract":
        b = draw(bv_terms(depth=depth + 1))
        hi = draw(st.integers(8, 15))
        lo = hi - 7
        return T.extract(T.concat(a, b), hi, lo)
    b = draw(bv_terms(depth=depth + 1))
    if op == "add":
        return T.add(a, b)
    if op == "sub":
        return T.sub(a, b)
    if op == "mul":
        return T.mul(a, b)
    if op == "and":
        return T.bv_and(a, b)
    if op == "or":
        return T.bv_or(a, b)
    if op == "xor":
        return T.bv_xor(a, b)
    if op == "shl":
        return T.shl(a, b)
    if op == "lshr":
        return T.lshr(a, b)
    cond_kind = draw(st.sampled_from(["eq", "ult", "ule"]))
    cond = {"eq": T.eq, "ult": T.ult, "ule": T.ule}[cond_kind](a, b)
    if draw(st.booleans()):
        cond = T.bool_not(cond)
    other = draw(bv_terms(depth=depth + 1))
    return T.ite(cond, b, other)


@st.composite
def bool_terms(draw, depth=0):
    """Random boolean terms (the executability-query shape)."""
    if depth > 2 or draw(st.booleans()):
        base = draw(st.sampled_from(["var", "cmp", "const"]))
        if base == "var":
            return draw(st.sampled_from([P, Q]))
        if base == "const":
            return draw(st.sampled_from([T.TRUE, T.FALSE]))
        a = draw(bv_terms(depth=2))
        b = draw(bv_terms(depth=2))
        cmp_op = draw(st.sampled_from([T.eq, T.ult, T.ule]))
        return cmp_op(a, b)
    op = draw(st.sampled_from(["and", "or", "not"]))
    a = draw(bool_terms(depth=depth + 1))
    if op == "not":
        return T.bool_not(a)
    b = draw(bool_terms(depth=depth + 1))
    return T.bool_and(a, b) if op == "and" else T.bool_or(a, b)


# -- interning identity -----------------------------------------------------


@given(term=bv_terms())
@settings(max_examples=200, deadline=None)
def test_encode_decode_identity(term):
    arena = TermArena()
    assert arena.decode(arena.encode(term)) is term


@given(term=bool_terms())
@settings(max_examples=100, deadline=None)
def test_encode_decode_identity_bool(term):
    arena = TermArena()
    assert arena.decode(arena.encode(term)) is term


@given(terms=st.lists(bv_terms(), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_identity_survives_pickle(terms):
    """The transport property: encode here, pickle the arena, decode
    'there' — the decoded terms are the very same interned objects the
    sender held, because decode re-interns through the default factory."""
    arena = TermArena()
    roots = [arena.encode(t) for t in terms]
    thawed = pickle.loads(pickle.dumps(arena))
    for root, term in zip(roots, terms):
        assert thawed.decode(root) is term


@given(term=bv_terms())
@settings(max_examples=100, deadline=None)
def test_double_pickle_is_stable(term):
    """Pickling is idempotent over the wire format (process-local caches
    are dropped, nothing else changes)."""
    arena = TermArena()
    root = arena.encode(term)
    once = pickle.dumps(arena)
    twice = pickle.dumps(pickle.loads(once))
    assert once == twice
    assert pickle.loads(twice).decode(root) is term


def test_shared_subterms_encode_once():
    arena = TermArena()
    shared = T.add(X, Y)
    a = arena.encode(T.mul(shared, shared))
    b = arena.encode(shared)
    assert arena._args[arena._first[a]] == b
    assert arena._args[arena._first[a] + 1] == b


# -- walker agreement -------------------------------------------------------


@given(term=bv_terms())
@settings(max_examples=200, deadline=None)
def test_arena_simplify_agrees_with_object_simplifier(term):
    arena = TermArena()
    root = arena.encode(term)
    assert arena.decode(arena.simplify(root)) is simplify(term)


@given(term=bool_terms())
@settings(max_examples=100, deadline=None)
def test_arena_simplify_agrees_on_bool_terms(term):
    arena = TermArena()
    root = arena.encode(term)
    assert arena.decode(arena.simplify(root)) is simplify(term)


@given(term=bv_terms(), vx=st.integers(0, 255), vc=st.integers(0, 255))
@settings(max_examples=200, deadline=None)
def test_arena_substitute_agrees_with_object_substitution(term, vx, vc):
    mapping = {X: c(vx), C: c(vc)}
    expected = substitute(term, mapping, simplify_result=False)
    arena = TermArena()
    root = arena.encode(term)
    arena_mapping = {
        arena.encode(var): arena.encode(val) for var, val in mapping.items()
    }
    assert arena.decode(arena.substitute(root, arena_mapping)) is expected


@given(term=bv_terms(), vx=st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_arena_substitute_then_simplify_matches_query_pipeline(term, vx):
    """The specialization-query composition: substitute, then simplify."""
    mapping = {X: c(vx)}
    expected = substitute(term, mapping, simplify_result=True)
    arena = TermArena()
    root = arena.encode(term)
    subbed = arena.substitute(root, {arena.encode(X): arena.encode(c(vx))})
    assert arena.decode(arena.simplify(subbed)) is expected


# -- clause transport -------------------------------------------------------


def random_cnf(rng, num_vars=6, num_clauses=14):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        chosen = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    return clauses


@given(seed=st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_clause_arena_pickle_round_trip(seed):
    rng = random.Random(seed)
    arena = ClauseArena()
    clauses = random_cnf(rng)
    crefs = [arena.add(lits, learned=bool(rng.random() < 0.3))
             for lits in clauses]
    thawed = pickle.loads(pickle.dumps(arena))
    assert len(thawed) == len(arena)
    for cref, lits in zip(crefs, clauses):
        assert thawed.clause(cref) == lits
        assert thawed.learned[cref] == arena.learned[cref]


def test_clause_arena_copy_is_independent():
    arena = ClauseArena()
    cref = arena.add([1, -2, 3])
    twin = arena.copy()
    twin.add([4, 5])
    twin.shrink(cref, 2)
    assert len(arena) == 1
    assert arena.clause(cref) == [1, -2, 3]
    assert twin.clause(cref) == [1, -2]


@given(seed=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_solver_snapshot_pickles_and_restores_equivalently(seed):
    """A snapshot blob survives pickle, and the restored solver reaches
    the same verdict (and keeps agreeing under added constraints)."""
    rng = random.Random(seed)
    clauses = random_cnf(rng)
    solver = SatSolver()
    for lits in clauses:
        solver.add_clause(lits)
    verdict = solver.solve()
    blob = pickle.loads(pickle.dumps(solver.snapshot()))
    twin = SatSolver.restore(blob)
    assert twin.solve() == verdict
    if verdict == SAT:
        # Pin the original model as units: still satisfiable on both.
        model = solver.model()
        units = [v if val else -v for v, val in model.items()]
        for solver_ in (solver, twin):
            for lit in units:
                solver_.add_clause([lit])
        assert solver.solve() == twin.solve() == SAT
    else:
        assert twin.solve() == UNSAT
