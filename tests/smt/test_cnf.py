"""Tests for the bit-blaster: every operator's CNF encoding matches the
evaluation semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.cnf import BitBlaster, assert_term, model_values
from repro.smt.sat import SAT, UNSAT

X = T.data_var("bb_x", 4)
Y = T.data_var("bb_y", 4)


def is_sat(term) -> bool:
    blaster = BitBlaster()
    assert_term(blaster, term)
    return blaster.solver.solve() == SAT


def solve_model(term):
    blaster = BitBlaster()
    assert_term(blaster, term)
    assert blaster.solver.solve() == SAT
    return model_values(blaster, term)


class TestEncodings:
    def test_eq_const_model(self):
        model = solve_model(T.eq(X, T.bv_const(9, 4)))
        assert model["bb_x"] == 9

    def test_unsat_contradiction(self):
        term = T.bool_and(
            T.eq(X, T.bv_const(3, 4)), T.eq(X, T.bv_const(4, 4))
        )
        assert not is_sat(term)

    def test_add_model(self):
        term = T.bool_and(
            T.eq(T.add(X, Y), T.bv_const(5, 4)),
            T.eq(X, T.bv_const(12, 4)),
        )
        model = solve_model(term)
        assert (model["bb_x"] + model["bb_y"]) % 16 == 5

    def test_sub_neg(self):
        term = T.eq(T.neg(X), T.bv_const(1, 4))
        model = solve_model(term)
        assert (-model["bb_x"]) % 16 == 1

    def test_mul(self):
        term = T.bool_and(
            T.eq(T.mul(X, Y), T.bv_const(12, 4)),
            T.eq(X, T.bv_const(3, 4)),
        )
        model = solve_model(term)
        assert (model["bb_x"] * model["bb_y"]) % 16 == 12

    def test_ult(self):
        term = T.bool_and(T.ult(X, T.bv_const(2, 4)), T.ne(X, T.bv_const(0, 4)))
        model = solve_model(term)
        assert model["bb_x"] == 1

    def test_ule_boundary(self):
        assert is_sat(T.ule(X, T.bv_const(0, 4)))
        assert not is_sat(T.ult(X, T.bv_const(0, 4)))

    def test_variable_shift_barrel(self):
        # x << y == 8 with x == 1 forces y == 3.
        term = T.bool_and(
            T.eq(T.shl(X, Y), T.bv_const(8, 4)),
            T.eq(X, T.bv_const(1, 4)),
        )
        model = solve_model(term)
        assert model["bb_y"] == 3

    def test_overshift_forces_zero(self):
        term = T.bool_and(
            T.eq(T.shl(X, Y), T.bv_const(0, 4)),
            T.eq(X, T.bv_const(0xF, 4)),
            T.eq(Y, T.bv_const(4, 4)),
        )
        assert is_sat(term)

    def test_concat_extract(self):
        wide = T.concat(X, Y)
        term = T.bool_and(
            T.eq(wide, T.bv_const(0xA5, 8)),
        )
        model = solve_model(term)
        assert model["bb_x"] == 0xA and model["bb_y"] == 0x5

    def test_ite_encoding(self):
        cond = T.eq(X, T.bv_const(1, 4))
        term = T.bool_and(
            T.eq(T.ite(cond, T.bv_const(7, 4), T.bv_const(2, 4)), T.bv_const(7, 4)),
        )
        model = solve_model(term)
        assert model["bb_x"] == 1

    def test_bool_var_encoding(self):
        p = T.bool_var("bb_p")
        assert is_sat(p)
        assert not is_sat(T.bool_and(p, T.bool_not(p)))

    def test_shared_encoding_consistent(self):
        # Encoding x twice must refer to the same SAT variables.
        blaster = BitBlaster()
        bits1 = blaster.encode_bv(X)
        bits2 = blaster.encode_bv(X)
        assert bits1 == bits2


# -- exhaustive property: encoding == evaluate for random closed ops --------

_BIN_OPS = {
    "add": T.add, "sub": T.sub, "mul": T.mul,
    "and": T.bv_and, "or": T.bv_or, "xor": T.bv_xor,
    "shl": T.shl, "lshr": T.lshr,
}


@given(
    op=st.sampled_from(sorted(_BIN_OPS)),
    a=st.integers(0, 15),
    b=st.integers(0, 15),
)
@settings(max_examples=200, deadline=None)
def test_binop_encoding_matches_semantics(op, a, b):
    """Assert op(a, b) != evaluate(op(a, b)) is UNSAT — encoding is exact."""
    expr = _BIN_OPS[op](T.bv_const(a, 4), T.bv_const(b, 4))
    expected = T.evaluate(expr, {})
    # Use free variables constrained to constants so folding can't bypass CNF.
    expr_v = _BIN_OPS[op](X, Y)
    constraint = T.bool_and(
        T.eq(X, T.bv_const(a, 4)),
        T.eq(Y, T.bv_const(b, 4)),
        T.ne(expr_v, T.bv_const(expected, 4)),
    )
    blaster = BitBlaster()
    assert_term(blaster, constraint)
    assert blaster.solver.solve() == UNSAT


@given(a=st.integers(0, 15), b=st.integers(0, 15))
@settings(max_examples=100, deadline=None)
def test_comparison_encoding_matches_semantics(a, b):
    for op, pyop in ((T.ult, lambda p, q: p < q), (T.ule, lambda p, q: p <= q)):
        expr = T.bool_and(
            T.eq(X, T.bv_const(a, 4)),
            T.eq(Y, T.bv_const(b, 4)),
            op(X, Y),
        )
        assert is_sat(expr) == pyop(a, b)
