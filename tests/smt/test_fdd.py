"""FDD invariants and brute-force equivalence against table semantics.

The gate's soundness rests on three structural properties of
:class:`repro.smt.fdd.TableFdd` — reduced, ordered, hash-consed — plus
one semantic one: the diagram's winner at any key vector equals the
first-match-wins winner over ``active_entries()``.  These tests pin all
four, by hand on crafted tables and by Hypothesis over random ones.
"""

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False

from repro.analysis.model import KeyInfo, TableInfo
from repro.runtime.entries import (
    ExactMatch,
    LpmMatch,
    TableEntry,
    TernaryMatch,
    match_hits,
)
from repro.runtime.semantics import INSERT, TableState
from repro.smt import terms as T
from repro.smt.fdd import (
    MAX_BANDS,
    MAX_ENTRIES,
    FddNode,
    TableFdd,
    mask_intervals,
)


# ---------------------------------------------------------------------------
# mask_intervals
# ---------------------------------------------------------------------------


def brute_intervals(value, mask, width):
    """Reference: enumerate matching points, merge into intervals."""
    points = [v for v in range(1 << width) if (v & mask) == (value & mask)]
    intervals, start = [], None
    for i, v in enumerate(points):
        if start is None:
            start = v
        if i + 1 == len(points) or points[i + 1] != v + 1:
            intervals.append((start, v))
            start = None
    return intervals


def test_mask_intervals_full_mask_is_point():
    assert mask_intervals(5, 0xFF, 8) == [(5, 5)]


def test_mask_intervals_zero_mask_is_domain():
    assert mask_intervals(123, 0, 8) == [(0, 255)]


def test_mask_intervals_prefix_mask_is_single_interval():
    assert mask_intervals(0x40, 0xC0, 8) == [(0x40, 0x7F)]


def test_mask_intervals_sparse_mask_fragments():
    # Caring only about bit 2: two matching values per 8-value block.
    got = mask_intervals(0b100, 0b100, 4)
    assert got == brute_intervals(0b100, 0b100, 4)
    assert len(got) == 2


def test_mask_intervals_matches_brute_force():
    for width in (4, 6):
        for mask in range(1 << width):
            got = mask_intervals(0, mask, width)
            if got is None:
                continue
            assert got == brute_intervals(0, mask, width), (mask, width)


def test_mask_intervals_overflow_returns_none():
    # Caring only about the LOW bit of a wide field means one interval
    # per even value — 2^47 of them, far past MAX_INTERVALS.
    assert mask_intervals(0, 1, 48) is None


# ---------------------------------------------------------------------------
# Table helpers
# ---------------------------------------------------------------------------


ACTIONS = ["hit_a", "hit_b", "hit_0", "hit_1", "hit_2"]


def make_table(match_kinds, widths, name="t"):
    keys = [
        KeyInfo(term=T.data_var(f"{name}.k{i}", w), match_kind=kind, width=w)
        for i, (kind, w) in enumerate(zip(match_kinds, widths))
    ]
    codes = {a: i for i, a in enumerate(ACTIONS + ["miss"])}
    return TableInfo(
        name=f"C.{name}",
        local_name=name,
        control="C",
        keys=keys,
        action_order=list(ACTIONS),
        action_codes=codes,
        default_action="miss",
        default_args=(),
        action_params={},
        size=None,
        selector_var=T.control_var(f"|C.{name}.action|", 8),
        hit_var=T.control_var(f"|C.{name}.hit|", 1),
        apply_condition=T.TRUE,
    )


def reference_winner(state, key_values):
    """First-match-wins over active_entries(), like encode_table's fold."""
    widths = state.info.key_widths()
    for entry in state.active_entries():
        if all(
            match_hits(match, value, width)
            for match, value, width in zip(entry.matches, key_values, widths)
        ):
            return (entry.action, entry.args)
    return None


def winner_from_leaf(leaf):
    return None if leaf.is_miss else (leaf.action, leaf.args)


# ---------------------------------------------------------------------------
# Structural invariants
# ---------------------------------------------------------------------------


def test_empty_table_is_miss_everywhere():
    info = make_table(["exact"], [8])
    state = TableState(info)
    fdd = TableFdd(info.key_widths())
    state.fdd = fdd
    assert fdd.lookup((0,)).is_miss
    assert fdd.lookup((255,)).is_miss
    fdd.check_invariants()


def test_insert_lookup_and_invariants():
    info = make_table(["exact", "ternary"], [8, 8])
    state = TableState(info)
    fdd = TableFdd(info.key_widths())
    state.fdd = fdd
    state.apply(INSERT, TableEntry((ExactMatch(3), TernaryMatch(0, 0)), "hit_a", (), 5))
    state.apply(INSERT, TableEntry((ExactMatch(3), TernaryMatch(7, 0xFF)), "hit_b", (), 9))
    fdd.root(state)
    fdd.check_invariants()
    for keys in [(3, 0), (3, 7), (4, 7), (0, 0)]:
        leaf = fdd.lookup(keys)
        assert winner_from_leaf(leaf) == reference_winner(state, keys), keys


def test_hash_consing_structurally_equal_is_pointer_equal():
    fdd = TableFdd((8,))
    a1 = fdd.leaf("act", (1, 2))
    a2 = fdd.leaf("act", (1, 2))
    assert a1 is a2
    n1 = fdd.node(0, ((10, a1), (255, fdd.miss)))
    n2 = fdd.node(0, ((10, a2), (255, fdd.miss)))
    assert n1 is n2


def test_node_merges_adjacent_equal_children():
    fdd = TableFdd((8,))
    leaf = fdd.leaf("act", ())
    node = fdd.node(0, ((10, leaf), (20, leaf), (255, fdd.miss)))
    assert isinstance(node, FddNode)
    assert node.edges == ((20, leaf), (255, fdd.miss))


def test_node_collapses_single_edge_to_child():
    fdd = TableFdd((8,))
    leaf = fdd.leaf("act", ())
    collapsed = fdd.node(0, ((100, leaf), (255, leaf)))
    assert collapsed is leaf


def test_leaf_identity_survives_rebuild():
    """The intern tables outlive rebuilds — leaf identity is a stable
    fingerprint component across incremental maintenance."""
    info = make_table(["exact"], [8])
    state = TableState(info)
    fdd = TableFdd(info.key_widths())
    state.fdd = fdd
    state.apply(INSERT, TableEntry((ExactMatch(1),), "hit_a", (), 0))
    fdd.root(state)
    before = fdd.lookup((1,))
    state.apply(INSERT, TableEntry((ExactMatch(200),), "hit_b", (), 0))
    fdd.root(state)
    after = fdd.lookup((1,))
    assert before is after


# ---------------------------------------------------------------------------
# fast_insert vs rebuild
# ---------------------------------------------------------------------------


def test_fast_insert_disjoint_region_avoids_rebuild():
    info = make_table(["exact"], [16])
    state = TableState(info)
    fdd = TableFdd(info.key_widths())
    state.fdd = fdd
    fdd.root(state)
    rebuilds_before = fdd.rebuilds
    for i in range(20):
        state.apply(INSERT, TableEntry((ExactMatch(i),), "hit_a", (), 0))
    assert fdd.root(state) is not None
    assert fdd.rebuilds == rebuilds_before
    assert fdd.fast_ops == 20
    fdd.check_invariants()
    for i in range(20):
        assert winner_from_leaf(fdd.lookup((i,))) == ("hit_a", ())


def test_overlapping_insert_falls_back_to_rebuild():
    info = make_table(["ternary"], [8])
    state = TableState(info)
    fdd = TableFdd(info.key_widths())
    state.fdd = fdd
    fdd.root(state)
    state.apply(INSERT, TableEntry((TernaryMatch(0, 0),), "hit_a", (), 1))
    # Second entry overlaps the wildcard → precedence matters → rebuild.
    state.apply(INSERT, TableEntry((TernaryMatch(5, 0xFF),), "hit_b", (), 2))
    assert fdd.root(state) is not None
    assert fdd.rebuilds >= 1
    for keys in [(0,), (5,), (200,)]:
        assert winner_from_leaf(fdd.lookup(keys)) == reference_winner(state, keys)


def test_opaque_on_entry_overflow():
    fdd = TableFdd((8,))
    fdd.rebuild([
        TableEntry((ExactMatch(i % 256),), "hit_a", (), 0)
        for i in range(MAX_ENTRIES + 1)
    ])
    assert fdd.root() is None
    assert fdd.lookup((0,)) is None


def test_uncubeable_entry_degrades_to_band_not_opaque():
    # Caring about only the low bit of a wide key explodes the interval
    # decomposition — the entry degrades to an opaque band, but point
    # lookups stay exact (membership vs a value/mask pair is trivial).
    fdd = TableFdd((48,))
    fdd.rebuild([TableEntry((TernaryMatch(0, 1),), "hit_a", (), 0)])
    assert fdd.root() is not None
    assert fdd._banded
    fdd.check_invariants()
    assert winner_from_leaf(fdd.lookup((4,))) == ("hit_a", ())  # even → match
    assert fdd.lookup((5,)).is_miss  # odd → falls through the band


def test_band_first_match_wins_with_one_key_opaque():
    """One wild key degrades; the other keys keep interval precision and
    the diagram still resolves every point to its first-match winner."""
    info = make_table(["exact", "ternary"], [8, 48])
    state = TableState(info)
    fdd = TableFdd(info.key_widths())
    state.fdd = fdd
    # Low precedence: wild second key (undecomposable: cares low bit only).
    state.apply(INSERT, TableEntry((ExactMatch(3), TernaryMatch(0, 1)), "hit_a", (), 1))
    # High precedence: precise on both keys, overlapping the band region.
    state.apply(INSERT, TableEntry((ExactMatch(3), TernaryMatch(6, (1 << 48) - 1)), "hit_b", (), 9))
    assert fdd.root(state) is not None
    fdd.check_invariants()
    for keys in [(3, 6), (3, 4), (3, 5), (2, 6), (3, 0), (0, 0)]:
        assert winner_from_leaf(fdd.lookup(keys)) == reference_winner(
            state, keys
        ), keys


def test_band_interning_and_identity_across_rebuilds():
    fdd = TableFdd((48,))
    entry = TableEntry((TernaryMatch(0, 1),), "hit_a", (), 0)
    fdd.rebuild([entry])
    root_one = fdd.root()
    hit_one = fdd.lookup((2,))
    fdd.mark_dirty()
    fdd.rebuild([entry])
    assert fdd.root() is root_one  # band interned on (entry content, child id)
    assert fdd.lookup((2,)) is hit_one  # resolved leaf interned too


def test_band_insert_path_marks_dirty_then_rebuilds():
    info = make_table(["ternary"], [48])
    state = TableState(info)
    fdd = TableFdd(info.key_widths())
    state.fdd = fdd
    fdd.root(state)
    state.apply(INSERT, TableEntry((TernaryMatch(0xFF, (1 << 48) - 1),), "hit_a", (), 1))
    assert fdd.fast_ops == 1
    # Undecomposable insert can't use the fast path: dirty → banded rebuild.
    state.apply(INSERT, TableEntry((TernaryMatch(1, 1),), "hit_b", (), 2))
    assert fdd._dirty
    assert fdd.root(state) is not None
    assert fdd._banded
    fdd.check_invariants()
    for keys in [(0xFF,), (1,), (3,), (2,), (0,)]:
        assert winner_from_leaf(fdd.lookup(keys)) == reference_winner(
            state, keys
        ), keys


def test_opaque_past_max_bands():
    fdd = TableFdd((48,))
    entries = [
        # Distinct wild masks (two low cared bits, varied values).
        TableEntry((TernaryMatch(i & 3, 3),), "hit_a", (i,), i)
        for i in range(MAX_BANDS + 1)
    ]
    fdd.rebuild(entries)
    assert fdd.root() is None
    assert fdd.lookup((0,)) is None


# ---------------------------------------------------------------------------
# Hypothesis: random tables match first-match-wins semantics
# ---------------------------------------------------------------------------

if HAVE_HYPOTHESIS:

    @st.composite
    def table_and_probes(draw):
        width = draw(st.sampled_from([4, 6, 8]))
        kinds = draw(
            st.lists(
                st.sampled_from(["exact", "ternary", "lpm"]),
                min_size=1,
                max_size=2,
            )
        )
        info = make_table(kinds, [width] * len(kinds))
        state = TableState(info)
        fdd = TableFdd(info.key_widths())
        state.fdd = fdd
        n_entries = draw(st.integers(min_value=0, max_value=8))
        for i in range(n_entries):
            matches = []
            for kind in kinds:
                value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
                if kind == "exact":
                    matches.append(ExactMatch(value))
                elif kind == "ternary":
                    mask = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
                    matches.append(TernaryMatch(value & mask, mask))
                else:
                    plen = draw(st.integers(min_value=0, max_value=width))
                    mask = ((1 << plen) - 1) << (width - plen) if plen else 0
                    matches.append(LpmMatch(value & mask, plen))
            priority = draw(st.integers(min_value=0, max_value=7))
            entry = TableEntry(
                tuple(matches), f"hit_{i % 3}", (), priority
            )
            try:
                state.apply(INSERT, entry)
            except Exception:
                pass  # duplicate match key — skip
        probes = draw(
            st.lists(
                st.tuples(
                    *[
                        st.integers(min_value=0, max_value=(1 << width) - 1)
                        for _ in kinds
                    ]
                ),
                min_size=1,
                max_size=8,
            )
        )
        return state, fdd, probes

    @settings(max_examples=60, deadline=None)
    @given(table_and_probes())
    def test_fdd_matches_first_match_wins(case):
        state, fdd, probes = case
        if fdd.root(state) is None:
            return  # opaque — the gate degrades, nothing to check
        fdd.check_invariants()
        for keys in probes:
            assert winner_from_leaf(fdd.lookup(keys)) == reference_winner(
                state, keys
            ), keys

    @settings(max_examples=60, deadline=None)
    @given(table_and_probes())
    def test_fdd_rebuild_reaches_same_root_as_incremental(case):
        """Determinism: a from-scratch rebuild of the same active entries
        lands on the pointer-identical root (hash-consing)."""
        state, fdd, _ = case
        incremental = fdd.root(state)
        fdd.mark_dirty()
        assert fdd.root(state) is incremental
