"""Regression tests for the interning invariant that id-keyed memos rely on.

Several caches (substitution memos, the engine's simplify memo) key on
``id(term)``.  That is only sound because the default :class:`TermFactory`
holds a *strong* reference to every term it ever built, so a term's id can
never be recycled by a structurally different term.  These tests pin that
invariant down so a future switch to weak interning fails loudly here
instead of corrupting caches silently.
"""

import gc
from concurrent.futures import ThreadPoolExecutor

from repro.smt import terms as T
from repro.smt.substitute import DeltaSubstitution, variable_dependencies


class TestInterningInvariant:
    def test_structural_equality_is_identity(self):
        a = T.add(T.data_var("x", 8), T.bv_const(1, 8))
        b = T.add(T.data_var("x", 8), T.bv_const(1, 8))
        assert a is b

    def test_factory_holds_strong_references(self):
        # Build a term, drop every local reference, collect, rebuild: the
        # factory must hand back the *same object* (same id), proving the
        # first build was never garbage collected.
        term = T.bv_xor(T.data_var("intern_probe", 16), T.bv_const(0xBEEF, 16))
        first_id = id(term)
        del term
        gc.collect()
        rebuilt = T.bv_xor(T.data_var("intern_probe", 16), T.bv_const(0xBEEF, 16))
        assert id(rebuilt) == first_id

    def test_interned_terms_are_in_factory_table(self):
        term = T.eq(T.data_var("y", 4), T.bv_const(3, 4))
        assert any(entry is term for entry in T.DEFAULT_FACTORY._table.values())


class TestConcurrentInterning:
    """The batch scheduler shares one factory across its worker pool, so
    concurrent construction of the same structure must yield one object —
    ``TermFactory._mk`` interns with a single atomic ``dict.setdefault``."""

    def test_racing_builders_get_one_representative(self):
        def build(round_id):
            x = T.data_var("race_probe", 16)
            return T.add(
                T.mul(x, T.bv_const(3, 16)), T.bv_const(round_id % 2, 16)
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            terms = list(pool.map(build, range(64)))
        evens = {id(t) for i, t in enumerate(terms) if i % 2 == 0}
        odds = {id(t) for i, t in enumerate(terms) if i % 2 == 1}
        assert len(evens) == 1
        assert len(odds) == 1
        assert evens != odds

    def test_concurrent_slice_applies_then_absorb(self):
        """Worker slices applying over shared structure, then merged: the
        shared memo ends up keyed on interned ids that resolve to the very
        objects the workers produced."""
        x = T.data_var("slice_probe_x", 8)
        ctrl_a = T.control_var("slice_probe.a", 8)
        ctrl_b = T.control_var("slice_probe.b", 8)
        shared_sub = DeltaSubstitution({})
        exprs = {
            "a": T.add(ctrl_a, x),
            "b": T.mul(ctrl_b, x),
        }
        slices = {name: shared_sub.fork_slice() for name in exprs}
        mappings = {
            "a": {ctrl_a: T.bv_const(3, 8)},
            "b": {ctrl_b: T.bv_const(5, 8)},
        }

        def run(name):
            piece = slices[name]
            piece.set_many(mappings[name])
            return piece.apply(exprs[name])

        with ThreadPoolExecutor(max_workers=2) as pool:
            results = dict(zip(exprs, pool.map(run, exprs)))
        for piece in slices.values():
            shared_sub.absorb(piece)
        # Post-merge, the shared substitution answers both by identity.
        assert shared_sub.apply(exprs["a"]) is results["a"]
        assert shared_sub.apply(exprs["b"]) is results["b"]
        # And the grafted results are the interned representatives.
        assert results["a"] is T.add(T.bv_const(3, 8), x)
        assert results["b"] is T.mul(T.bv_const(5, 8), x)


class TestTreeSizeMemo:
    def test_memoized_matches_recount(self):
        x = T.data_var("x", 8)
        term = T.add(T.mul(x, T.bv_const(3, 8)), T.bv_const(7, 8))
        first = T.tree_size(term)
        assert T.tree_size(term) == first
        # An explicit memo (legacy call shape) agrees with the global one.
        assert T.tree_size(term, {}) == first

    def test_shared_subterms_counted_per_occurrence(self):
        # tree_size is the *tree* size: a DAG-shared child counts once per
        # occurrence.  The memo must not collapse that to DAG size.
        x = T.data_var("x", 8)
        shared = T.add(x, T.bv_const(1, 8))
        T.tree_size(shared)  # warm the memo on the subterm first
        term = T.mul(shared, shared)
        assert T.tree_size(term) == 2 * T.tree_size(shared) + 1


class TestVariableDependencies:
    def test_collects_all_variable_names(self):
        term = T.ite(
            T.eq(T.control_var("t.action", 2), T.bv_const(1, 2)),
            T.data_var("pkt.f", 8),
            T.bv_const(0, 8),
        )
        assert variable_dependencies(term) == {"t.action", "pkt.f"}

    def test_constant_has_no_dependencies(self):
        assert variable_dependencies(T.bv_const(5, 8)) == frozenset()

    def test_memo_is_stable_across_calls(self):
        term = T.add(T.data_var("a", 8), T.data_var("b", 8))
        assert variable_dependencies(term) is variable_dependencies(term)
