"""Tests for the interval abstract domain."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import interval as I
from repro.smt import terms as T

X = T.data_var("iv_x", 8)


def c(v, w=8):
    return T.bv_const(v, w)


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            I.Interval(5, 3)

    def test_point_and_contains(self):
        point = I.Interval(4, 4)
        assert point.is_point
        assert point.contains(4) and not point.contains(5)

    def test_intersects(self):
        assert I.Interval(0, 5).intersects(I.Interval(5, 9))
        assert not I.Interval(0, 4).intersects(I.Interval(5, 9))


class TestEvalInterval:
    def test_const_is_point(self):
        assert I.eval_interval(c(7)) == I.Interval(7, 7)

    def test_free_var_is_full_range(self):
        assert I.eval_interval(X) == I.Interval(0, 255)

    def test_add_without_overflow(self):
        expr = T.add(c(10), c(20))
        assert I.eval_interval(expr) == I.Interval(30, 30)

    def test_and_bounded_by_mask(self):
        expr = T.bv_and(X, c(0x0F))
        assert I.eval_interval(expr).hi <= 0x0F

    def test_lshr_shrinks(self):
        expr = T.lshr(X, c(4))
        assert I.eval_interval(expr) == I.Interval(0, 15)

    def test_concat(self):
        lo = T.data_var("iv_lo", 4)
        expr = T.concat(c(0xA, 4), lo)
        result = I.eval_interval(expr)
        assert result.lo == 0xA0 and result.hi == 0xAF


class TestEvalBool:
    def test_definitely_false_disjoint(self):
        expr = T.eq(T.bv_and(X, c(0x0F)), c(0xF0))
        assert I.eval_bool(expr) == I.DEFINITELY_FALSE

    def test_definitely_true_comparison(self):
        expr = T.ult(T.lshr(X, c(4)), c(16))
        assert I.eval_bool(expr) == I.DEFINITELY_TRUE

    def test_unknown_when_overlapping(self):
        assert I.eval_bool(T.eq(X, c(3))) == I.UNKNOWN

    def test_connectives(self):
        false_leaf = T.eq(T.bv_and(X, c(0x0F)), c(0xF0))
        assert I.eval_bool(T.bool_and(false_leaf, T.eq(X, c(1)))) == I.DEFINITELY_FALSE
        assert I.eval_bool(T.bool_or(T.bool_not(false_leaf), T.eq(X, c(1)))) == I.DEFINITELY_TRUE

    def test_deep_term_no_recursion_error(self):
        expr = X
        for i in range(3000):
            expr = T.ite(T.eq(X, c(i % 256)), c(i % 256), expr)
        assert I.eval_bool(T.eq(expr, c(0))) in (
            I.DEFINITELY_TRUE, I.DEFINITELY_FALSE, I.UNKNOWN
        )


# -- soundness property ------------------------------------------------------


@st.composite
def small_terms(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return draw(st.sampled_from([X, c(0), c(15), c(draw(st.integers(0, 255)))]))
    op = draw(st.sampled_from(["add", "sub", "and", "or", "lshr", "shl"]))
    a = draw(small_terms(depth=depth + 1))
    b = draw(small_terms(depth=depth + 1))
    return {
        "add": T.add, "sub": T.sub, "and": T.bv_and,
        "or": T.bv_or, "lshr": T.lshr, "shl": T.shl,
    }[op](a, b)


@given(term=small_terms(), x=st.integers(0, 255))
@settings(max_examples=300, deadline=None)
def test_interval_is_sound(term, x):
    """The concrete value always falls inside the computed interval."""
    value = T.evaluate(term, {"iv_x": x})
    box = I.eval_interval(term)
    assert box.contains(value)


@given(
    a=st.integers(0, 255), b=st.integers(0, 255), x=st.integers(0, 255),
)
@settings(max_examples=200, deadline=None)
def test_bool_verdicts_sound(a, b, x):
    term = T.eq(T.bv_and(X, c(a)), c(b))
    verdict = I.eval_bool(term)
    concrete = T.evaluate(term, {"iv_x": x})
    if verdict == I.DEFINITELY_TRUE:
        assert concrete == 1
    elif verdict == I.DEFINITELY_FALSE:
        assert concrete == 0


class TestGateScreenEdgeCases:
    """Boundary behaviour the tier-1 verdict-gate screen leans on."""

    def test_zero_width_style_point_intervals(self):
        # A zero-width (point) interval at each end of the domain.
        low = I.Interval(0, 0)
        high = I.Interval(255, 255)
        assert low.is_point and high.is_point
        assert low.contains(0) and not low.contains(1)
        assert high.contains(255) and not high.contains(254)
        assert not low.intersects(high)

    def test_intersects_boundary_values(self):
        # Touching at exactly one point counts as intersecting.
        assert I.Interval(0, 10).intersects(I.Interval(10, 10))
        assert I.Interval(10, 10).intersects(I.Interval(0, 10))
        # Off by one does not.
        assert not I.Interval(0, 9).intersects(I.Interval(10, 10))
        # Containment is intersection too.
        assert I.Interval(0, 255).intersects(I.Interval(17, 17))

    def test_contains_boundaries(self):
        box = I.Interval(5, 9)
        assert box.contains(5) and box.contains(9)
        assert not box.contains(4) and not box.contains(10)

    def test_full_domain_mask_conjunction(self):
        # x & 0xFF == x for 8-bit x: the mask is a no-op, the comparison
        # stays undecidable (x is free).
        term = T.eq(T.bv_and(X, c(0xFF)), c(3))
        assert I.eval_bool(term) == I.UNKNOWN

    def test_zero_mask_decides_definitely(self):
        # x & 0 is the point interval [0, 0]: equality against zero is
        # definite-true, against anything else definite-false.
        masked = T.bv_and(X, c(0))
        assert I.eval_interval(masked) == I.Interval(0, 0)
        assert I.eval_bool(T.eq(masked, c(0))) == I.DEFINITELY_TRUE
        assert I.eval_bool(T.eq(masked, c(7))) == I.DEFINITELY_FALSE

    def test_eval_bool_mixed_known_unknown_and(self):
        # AND short-circuits on a definite-false conjunct even when the
        # other side is unknown — the shape the gate's NEVER tier relies
        # on.
        unknown = T.eq(X, c(3))
        false_side = T.eq(c(1), c(2))
        assert I.eval_bool(unknown) == I.UNKNOWN
        assert I.eval_bool(T.bool_and(unknown, false_side)) == I.DEFINITELY_FALSE
        assert I.eval_bool(T.bool_and(false_side, unknown)) == I.DEFINITELY_FALSE

    def test_eval_bool_mixed_known_unknown_or(self):
        unknown = T.eq(X, c(3))
        true_side = T.eq(c(2), c(2))
        assert I.eval_bool(T.bool_or(unknown, true_side)) == I.DEFINITELY_TRUE
        assert I.eval_bool(T.bool_or(true_side, unknown)) == I.DEFINITELY_TRUE
        # unknown OR false stays unknown.
        false_side = T.eq(c(1), c(2))
        assert I.eval_bool(T.bool_or(unknown, false_side)) == I.UNKNOWN

    def test_eval_bool_disjoint_ranges_decide_comparison(self):
        # x | 0xF0 lives in [0xF0, 0xFF]; comparing against a constant
        # below that range is definitely false.
        high = T.bv_or(X, c(0xF0))
        assert I.eval_bool(T.eq(high, c(0x10))) == I.DEFINITELY_FALSE
        assert I.eval_bool(T.ult(high, c(0xF0))) == I.DEFINITELY_FALSE
        assert I.eval_bool(T.ult(c(0x10), high)) == I.DEFINITELY_TRUE
