"""Tests for the incremental CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat import SAT, UNSAT, SatSolver, SolverBudgetExceeded, luby


def brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


def brute_force_under(
    num_vars: int, clauses: list[list[int]], assumptions: list[int]
) -> bool:
    return brute_force(num_vars, clauses + [[lit] for lit in assumptions])


class TestBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve() == SAT

    def test_single_unit(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.solve() == SAT
        assert solver.model()[1] is True

    def test_conflicting_units(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() == UNSAT
        assert solver.model() is None

    def test_empty_clause_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert solver.solve() == UNSAT

    def test_tautology_dropped(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.num_clauses == 0
        assert solver.solve() == SAT

    def test_duplicate_literals_collapsed(self):
        solver = SatSolver()
        solver.add_clause([1, 1, 1])
        assert solver.solve() == SAT

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            SatSolver().add_clause([0])

    def test_implication_chain(self):
        solver = SatSolver()
        for i in range(1, 50):
            solver.add_clause([-i, i + 1])  # i -> i+1
        solver.add_clause([1])
        solver.add_clause([-50])
        assert solver.solve() == UNSAT

    def test_model_satisfies_clauses(self):
        rng = random.Random(1)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, 8) for _ in range(3)]
            for _ in range(20)
        ]
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve() == SAT:
            model = solver.model()
            for clause in clauses:
                assert any(model.get(abs(l), False) == (l > 0) for l in clause)

    def test_pigeonhole_3_into_2_unsat(self):
        # var p_{i,j}: pigeon i in hole j (i in 0..2, j in 0..1)
        def v(i, j):
            return i * 2 + j + 1

        solver = SatSolver()
        for i in range(3):
            solver.add_clause([v(i, 0), v(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    solver.add_clause([-v(i1, j), -v(i2, j)])
        assert solver.solve() == UNSAT


def pigeonhole(solver: SatSolver, pigeons: int, holes: int) -> None:
    def v(i, j):
        return i * holes + j + 1

    for i in range(pigeons):
        solver.add_clause([v(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                solver.add_clause([-v(i1, j), -v(i2, j)])


class TestBudget:
    def test_conflict_budget_exceeded(self):
        # Pigeonhole 8→7 needs exponentially many conflicts even for CDCL;
        # a budget of 1 conflict trips immediately.
        solver = SatSolver()
        pigeonhole(solver, 8, 7)
        with pytest.raises(SolverBudgetExceeded):
            solver.solve(max_conflicts=1)

    def test_legacy_decision_budget_alias(self):
        solver = SatSolver()
        pigeonhole(solver, 8, 7)
        with pytest.raises(SolverBudgetExceeded):
            solver.solve(max_decisions=1)

    def test_budget_is_per_call(self):
        # A blown budget must not poison the solver: the same instance
        # answers correctly on a later call with enough budget.
        solver = SatSolver()
        pigeonhole(solver, 6, 5)
        with pytest.raises(SolverBudgetExceeded):
            solver.solve(max_conflicts=1)
        assert solver.solve() == UNSAT


class TestModelInvalidation:
    def test_add_clause_invalidates_cached_model(self):
        # Regression: mutating the clause set after SAT must not leave a
        # stale model visible — [1] alone gave {1: True}, which does not
        # satisfy the formula once [-1, 2] is added.
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.solve() == SAT
        assert solver.model() == {1: True}
        solver.add_clause([-1, 2])
        assert solver.model() is None
        assert solver.solve() == SAT
        model = solver.model()
        assert model[1] is True and model[2] is True

    def test_add_clause_after_unsat_stays_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() == UNSAT
        solver.add_clause([2])
        assert solver.solve() == UNSAT


class TestAssumptions:
    def test_assumption_forces_polarity(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) == SAT
        assert solver.model()[2] is True
        assert solver.solve(assumptions=[-2]) == SAT
        assert solver.model()[1] is True

    def test_unsat_under_assumptions_only(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) == UNSAT
        # The formula itself is untouched: still SAT without assumptions.
        assert solver.solve() == SAT

    def test_conflicting_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1]) == UNSAT
        assert solver.solve() == SAT

    def test_assumption_of_root_falsified_literal(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.solve(assumptions=[-1]) == UNSAT
        assert solver.solve(assumptions=[1]) == SAT

    def test_activation_literal_pattern(self):
        # The session idiom: each query root guarded by (¬act ∨ root).
        solver = SatSolver()
        x, a1, a2 = 1, 2, 3
        solver.add_clause([-a1, x])
        solver.add_clause([-a2, -x])
        assert solver.solve(assumptions=[a1]) == SAT
        assert solver.model()[x] is True
        assert solver.solve(assumptions=[a2]) == SAT
        assert solver.model()[x] is False
        assert solver.solve(assumptions=[a1, a2]) == UNSAT
        assert solver.solve() == SAT

    def test_incremental_reuse_keeps_learning(self):
        # Repeated probes of an UNSAT core should get cheaper as learned
        # clauses accumulate — at minimum, stay correct across many calls.
        solver = SatSolver()
        pigeonhole(solver, 5, 4)
        act = solver.new_var()
        solver.add_clause([-act, 1])
        first = solver.stats.conflicts
        assert solver.solve(assumptions=[act]) == UNSAT
        cost_first = solver.stats.conflicts - first
        for _ in range(3):
            before = solver.stats.conflicts
            assert solver.solve(assumptions=[act]) == UNSAT
            assert solver.stats.conflicts - before <= max(cost_first, 1)


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestStats:
    def test_counters_move(self):
        solver = SatSolver()
        pigeonhole(solver, 4, 3)
        assert solver.solve() == UNSAT
        stats = solver.stats
        assert stats.solves == 1
        assert stats.conflicts > 0
        assert stats.propagations > 0
        assert stats.learned > 0

    def test_snapshot_since(self):
        solver = SatSolver()
        pigeonhole(solver, 4, 3)
        before = solver.stats.snapshot()
        assert solver.solve() == UNSAT
        delta = solver.stats.since(before)
        assert delta.solves == 1
        assert delta.conflicts == solver.stats.conflicts


class TestForkImport:
    def test_fork_is_independent(self):
        parent = SatSolver()
        parent.add_clause([1, 2])
        child = parent.fork()
        child.add_clause([-1])
        assert child.solve() == SAT
        assert child.model()[2] is True
        # Parent unaffected by the child's extra clause.
        assert parent.solve(assumptions=[-2]) == SAT
        assert parent.model()[1] is True

    def test_fork_carries_learned_clauses(self):
        parent = SatSolver()
        pigeonhole(parent, 5, 4)
        assert parent.solve() == UNSAT
        child = parent.fork()
        assert child.solve() == UNSAT

    def test_import_learned(self):
        a = SatSolver()
        pigeonhole(a, 4, 3)
        b = a.fork()
        assert b.solve() == UNSAT
        exported = b.learned_clauses()
        imported = a.import_learned(exported)
        assert imported >= 0
        assert a.solve() == UNSAT

    def test_import_skips_unknown_vars(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.import_learned([[3, 4]]) == 0
        assert solver.solve() == SAT


clause_strategy = st.lists(
    st.lists(
        st.integers(1, 6).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=15,
)

wide_clause_strategy = st.lists(
    st.lists(
        st.integers(1, 14).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=40,
)


@given(clauses=clause_strategy)
@settings(max_examples=200, deadline=None)
def test_agrees_with_brute_force(clauses):
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    expected = brute_force(6, clauses)
    assert (solver.solve() == SAT) == expected


@given(clauses=wide_clause_strategy)
@settings(max_examples=100, deadline=None)
def test_wide_agrees_with_brute_force_and_model_is_valid(clauses):
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    expected = brute_force(14, clauses)
    assert (solver.solve() == SAT) == expected
    if expected:
        model = solver.model()
        for clause in clauses:
            assert any(model.get(abs(l), False) == (l > 0) for l in clause)


@given(
    clauses=wide_clause_strategy,
    assumptions=st.lists(
        st.integers(1, 14).flatmap(lambda v: st.sampled_from([v, -v])),
        max_size=4,
    ),
)
@settings(max_examples=100, deadline=None)
def test_assumptions_agree_with_brute_force(clauses, assumptions):
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    expected = brute_force_under(14, clauses, assumptions)
    assert (solver.solve(assumptions=assumptions) == SAT) == expected
    # The probe must not leave residue: plain solve still matches.
    assert (solver.solve() == SAT) == brute_force(14, clauses)


@given(
    clauses=clause_strategy,
    extra=st.lists(
        st.lists(
            st.integers(1, 6).flatmap(lambda v: st.sampled_from([v, -v])),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=100, deadline=None)
def test_incremental_add_matches_from_scratch(clauses, extra):
    # solve / add more clauses / solve again ≡ one fresh solver with all
    # clauses — clause learning must be conservative.
    incremental = SatSolver()
    for clause in clauses:
        incremental.add_clause(clause)
    incremental.solve()
    for clause in extra:
        incremental.add_clause(clause)
    expected = brute_force(6, clauses + extra)
    assert (incremental.solve() == SAT) == expected
