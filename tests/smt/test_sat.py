"""Tests for the DPLL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat import SAT, UNSAT, SatSolver, SolverBudgetExceeded


def brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve() == SAT

    def test_single_unit(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.solve() == SAT
        assert solver.model()[1] is True

    def test_conflicting_units(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() == UNSAT
        assert solver.model() is None

    def test_empty_clause_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert solver.solve() == UNSAT

    def test_tautology_dropped(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.num_clauses == 0
        assert solver.solve() == SAT

    def test_duplicate_literals_collapsed(self):
        solver = SatSolver()
        solver.add_clause([1, 1, 1])
        assert solver.solve() == SAT

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            SatSolver().add_clause([0])

    def test_implication_chain(self):
        solver = SatSolver()
        for i in range(1, 50):
            solver.add_clause([-i, i + 1])  # i -> i+1
        solver.add_clause([1])
        solver.add_clause([-50])
        assert solver.solve() == UNSAT

    def test_model_satisfies_clauses(self):
        rng = random.Random(1)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, 8) for _ in range(3)]
            for _ in range(20)
        ]
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve() == SAT:
            model = solver.model()
            for clause in clauses:
                assert any(model.get(abs(l), False) == (l > 0) for l in clause)

    def test_pigeonhole_3_into_2_unsat(self):
        # var p_{i,j}: pigeon i in hole j (i in 0..2, j in 0..1)
        def v(i, j):
            return i * 2 + j + 1

        solver = SatSolver()
        for i in range(3):
            solver.add_clause([v(i, 0), v(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    solver.add_clause([-v(i1, j), -v(i2, j)])
        assert solver.solve() == UNSAT

    def test_budget_exceeded(self):
        # Pigeonhole 6→5 requires real search; a budget of 1 decision trips.
        def v(i, j):
            return i * 5 + j + 1

        solver = SatSolver()
        for i in range(6):
            solver.add_clause([v(i, j) for j in range(5)])
        for j in range(5):
            for i1 in range(6):
                for i2 in range(i1 + 1, 6):
                    solver.add_clause([-v(i1, j), -v(i2, j)])
        with pytest.raises(SolverBudgetExceeded):
            solver.solve(max_decisions=1)


@given(
    clauses=st.lists(
        st.lists(
            st.integers(1, 6).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=200, deadline=None)
def test_agrees_with_brute_force(clauses):
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    expected = brute_force(6, clauses)
    assert (solver.solve() == SAT) == expected
