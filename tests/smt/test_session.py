"""Tests for the persistent assumption-probing solver session.

The properties that matter: a session probe must agree with a fresh
one-shot solve of the same term (incrementality is invisible to answers),
models must decode against the original term, and the fork/export/absorb
cycle used by the batch scheduler must be conservative.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.ir.metrics import CacheCounter
from repro.smt import terms as T
from repro.smt.cnf import FragmentBitBlaster
from repro.smt.session import SolverSession
from repro.smt.solver import Solver


def fresh_verdict(term) -> bool:
    """Ground truth: a throw-away non-incremental solver."""
    return Solver(share_encodings=False).check_sat(term).satisfiable


def make_session() -> SolverSession:
    return SolverSession(FragmentBitBlaster(CacheCounter("cnf")))


def random_term(rng: random.Random, depth: int = 3):
    """A random boolean term over a small shared variable pool."""
    x = T.data_var("x", 8)
    y = T.data_var("y", 8)
    z = T.data_var("z", 8)

    def bv(d):
        if d == 0 or rng.random() < 0.3:
            return rng.choice(
                [x, y, z, T.bv_const(rng.randrange(256), 8)]
            )
        op = rng.choice([T.add, T.sub, T.bv_and, T.bv_or, T.bv_xor, T.mul])
        return op(bv(d - 1), bv(d - 1))

    def boolean(d):
        if d == 0:
            cmp = rng.choice([T.eq, T.ne, T.ult, T.ule])
            return cmp(bv(depth), bv(depth))
        op = rng.choice(["and", "or", "not", "leaf"])
        if op == "and":
            return T.bool_and(boolean(d - 1), boolean(d - 1))
        if op == "or":
            return T.bool_or(boolean(d - 1), boolean(d - 1))
        if op == "not":
            return T.bool_not(boolean(d - 1))
        cmp = rng.choice([T.eq, T.ne, T.ult, T.ule])
        return cmp(bv(depth), bv(depth))

    return boolean(depth)


class TestProbe:
    def test_probe_matches_fresh_solver(self):
        session = make_session()
        x = T.data_var("x", 8)
        sat_term = T.eq(x, T.bv_const(7, 8))
        unsat_term = T.bool_and(
            T.eq(x, T.bv_const(1, 8)), T.eq(x, T.bv_const(2, 8))
        )
        assert session.probe(sat_term) is True
        assert session.probe(unsat_term) is False
        # Answers are stable on re-probe (learned clauses notwithstanding).
        assert session.probe(sat_term) is True
        assert session.probe(unsat_term) is False

    def test_model_satisfies_term(self):
        session = make_session()
        x = T.data_var("x", 8)
        y = T.data_var("y", 8)
        term = T.bool_and(
            T.eq(T.add(x, y), T.bv_const(10, 8)), T.ult(x, T.bv_const(4, 8))
        )
        assert session.probe(term) is True
        values = session.model_values(term)
        assert T.evaluate(term, values) == 1

    def test_earlier_queries_do_not_constrain_later_ones(self):
        # Asserting x == 1 in one probe must not leak into the next: the
        # activation guard keeps each root conditional.
        session = make_session()
        x = T.data_var("x", 8)
        assert session.probe(T.eq(x, T.bv_const(1, 8))) is True
        assert session.probe(T.eq(x, T.bv_const(2, 8))) is True
        assert (
            session.probe(
                T.bool_and(
                    T.eq(x, T.bv_const(1, 8)), T.eq(x, T.bv_const(2, 8))
                )
            )
            is False
        )
        assert session.probe(T.eq(x, T.bv_const(1, 8))) is True

    def test_fragments_loaded_once(self):
        session = make_session()
        x = T.data_var("x", 8)
        base = T.add(x, T.bv_const(1, 8))
        session.probe(T.eq(base, T.bv_const(3, 8)))
        loaded = session.loaded_fragments
        # Second query over the same subterm reuses its loaded cone.
        session.probe(T.ne(base, T.bv_const(3, 8)))
        assert session.loaded_fragments > loaded  # new root only
        before = session.loaded_fragments
        session.probe(T.eq(base, T.bv_const(3, 8)))  # fully repeated
        assert session.loaded_fragments == before

    def test_many_random_terms_agree_with_fresh(self):
        rng = random.Random(7)
        session = make_session()
        for _ in range(40):
            term = random_term(rng, depth=2)
            assert session.probe(term) == fresh_verdict(term), T.to_string(term)


class TestForkAbsorb:
    def test_fork_probe_agrees(self):
        parent = make_session()
        x = T.data_var("x", 8)
        parent.probe(T.eq(x, T.bv_const(1, 8)))
        fork = parent.fork(parent.encoder.fork(CacheCounter("cnf-fork")))
        term = T.bool_and(
            T.ult(x, T.bv_const(9, 8)), T.ne(x, T.bv_const(3, 8))
        )
        assert fork.probe(term) == fresh_verdict(term)
        # Parent still answers correctly afterwards.
        assert parent.probe(term) == fresh_verdict(term)

    def test_absorb_learned_clauses_is_conservative(self):
        rng = random.Random(21)
        parent = make_session()
        warmup = [random_term(rng, depth=2) for _ in range(10)]
        for term in warmup:
            parent.probe(term)
        fork = parent.fork(parent.encoder.fork(CacheCounter("cnf-fork")))
        fork_terms = [random_term(rng, depth=2) for _ in range(10)]
        expected = {term: fresh_verdict(term) for term in fork_terms}
        for term in fork_terms:
            assert fork.probe(term) == expected[term]
        imported = parent.absorb(fork)
        assert imported >= 0
        # The merged parent still answers every query correctly.
        for term in warmup + fork_terms:
            assert parent.probe(term) == fresh_verdict(term)

    def test_absorb_rejects_foreign_fork(self):
        a = make_session()
        b = make_session()
        x = T.data_var("x", 8)
        b.probe(T.eq(x, T.bv_const(1, 8)))
        assert a.absorb(b) == 0


class TestSolverFacadeFork:
    def test_fork_slice_and_absorb(self):
        rng = random.Random(3)
        shared = Solver()
        terms = [random_term(rng, depth=2) for _ in range(8)]
        expected = {term: fresh_verdict(term) for term in terms}
        for term in terms[:4]:
            assert shared.check_sat(term).satisfiable == expected[term]
        fork = shared.fork_slice()
        for term in terms[4:]:
            assert fork.check_sat(term).satisfiable == expected[term]
        before = shared.stats.probes
        shared.absorb_fork(fork)
        assert shared.stats.probes == before + fork.stats.probes
        for term in terms:
            assert shared.check_sat(term).satisfiable == expected[term]

    def test_replay_baseline_agrees_with_session(self):
        rng = random.Random(11)
        incremental = Solver(incremental=True)
        replay = Solver(incremental=False)
        for _ in range(25):
            term = random_term(rng, depth=2)
            assert (
                incremental.check_sat(term).satisfiable
                == replay.check_sat(term).satisfiable
            ), T.to_string(term)


@st.composite
def term_strategy(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    return random_term(random.Random(seed), depth=2)


@given(terms=st.lists(term_strategy(), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_session_stream_agrees_with_fresh_solves(terms):
    # The incremental-solving core property: probing a stream of queries
    # against one persistent session gives the same verdicts as solving
    # each query in a fresh solver.
    session = make_session()
    for term in terms:
        assert session.probe(term) == fresh_verdict(term)
