"""Unit + property tests for the algebraic simplifier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.simplify import constant_value, simplify

X = T.data_var("sx", 8)
Y = T.data_var("sy", 8)
P = T.bool_var("sp")
Q = T.bool_var("sq")


def c(v, w=8):
    return T.bv_const(v, w)


class TestFolding:
    def test_constant_arith_folds(self):
        assert simplify(T.add(c(3), c(4))) is c(7)
        assert simplify(T.mul(c(3), c(4))) is c(12)
        assert simplify(T.sub(c(3), c(4))) is c(255)

    def test_constant_compare_folds(self):
        assert simplify(T.ult(c(3), c(4))) is T.TRUE
        assert simplify(T.eq(c(3), c(4))) is T.FALSE

    def test_identity_elements(self):
        assert simplify(T.add(X, c(0))) is X
        assert simplify(T.sub(X, c(0))) is X
        assert simplify(T.mul(X, c(1))) is X
        assert simplify(T.bv_or(X, c(0))) is X
        assert simplify(T.bv_xor(X, c(0))) is X
        assert simplify(T.bv_and(X, c(0xFF))) is X

    def test_annihilators(self):
        assert simplify(T.mul(X, c(0))) is c(0)
        assert simplify(T.bv_and(X, c(0))) is c(0)
        assert simplify(T.bv_or(X, c(0xFF))) is c(0xFF)

    def test_self_cancellation(self):
        assert simplify(T.sub(X, X)) is c(0)
        assert simplify(T.bv_xor(X, X)) is c(0)
        assert simplify(T.bv_and(X, X)) is X
        assert simplify(T.bv_or(X, X)) is X

    def test_double_negation(self):
        assert simplify(T.bv_not(T.bv_not(X))) is X
        assert simplify(T.bool_not(T.bool_not(P))) is P

    def test_strength_reduction_mul_power_of_two(self):
        reduced = simplify(T.mul(X, c(8)))
        assert reduced.op == T.OP_SHL
        assert T.evaluate(reduced, {"sx": 5}) == 40

    def test_shift_by_zero(self):
        assert simplify(T.shl(X, c(0))) is X
        assert simplify(T.lshr(X, c(0))) is X

    def test_overshift_is_zero(self):
        assert simplify(T.shl(X, c(8))) is c(0)
        assert simplify(T.lshr(X, c(200))) is c(0)


class TestIte:
    def test_const_condition(self):
        assert simplify(T.ite(T.TRUE, X, Y)) is X
        assert simplify(T.ite(T.FALSE, X, Y)) is Y

    def test_same_branches_collapse(self):
        cond = T.eq(X, c(1))
        assert simplify(T.ite(cond, Y, Y)) is Y

    def test_negated_condition_swaps(self):
        cond = T.eq(X, c(1))
        a = simplify(T.ite(T.bool_not(cond), X, Y))
        b = simplify(T.ite(cond, Y, X))
        assert a is b

    def test_nested_same_condition_collapses(self):
        cond = T.eq(X, c(1))
        nested = T.ite(cond, T.ite(cond, c(1), c(2)), c(3))
        assert simplify(nested) is simplify(T.ite(cond, c(1), c(3)))

    def test_eq_of_constant_ite_becomes_condition(self):
        # (cond ? 5 : 0) == 5  -->  cond
        cond = T.eq(X, c(1))
        expr = T.eq(T.ite(cond, c(5), c(0)), c(5))
        assert simplify(expr) is simplify(cond)

    def test_eq_of_constant_ite_no_match_is_false(self):
        cond = T.eq(X, c(1))
        expr = T.eq(T.ite(cond, c(5), c(0)), c(7))
        assert simplify(expr) is T.FALSE


class TestBooleans:
    def test_and_short_circuit(self):
        assert simplify(T.bool_and(P, T.FALSE)) is T.FALSE
        assert simplify(T.bool_and(P, T.TRUE)) is P

    def test_or_short_circuit(self):
        assert simplify(T.bool_or(P, T.TRUE)) is T.TRUE
        assert simplify(T.bool_or(P, T.FALSE)) is P

    def test_contradiction(self):
        assert simplify(T.bool_and(P, T.bool_not(P))) is T.FALSE
        assert simplify(T.bool_or(P, T.bool_not(P))) is T.TRUE

    def test_flattening_dedup(self):
        expr = T.bool_and(T.bool_and(P, Q), P)
        assert simplify(expr) is simplify(T.bool_and(P, Q))

    def test_eq_reflexive(self):
        assert simplify(T.eq(X, X)) is T.TRUE
        assert simplify(T.ult(X, X)) is T.FALSE
        assert simplify(T.ule(X, X)) is T.TRUE

    def test_ult_bounds(self):
        assert simplify(T.ult(X, c(0))) is T.FALSE
        assert simplify(T.ule(c(0), X)) is T.TRUE
        assert simplify(T.ule(X, c(0xFF))) is T.TRUE


class TestExtractConcat:
    def test_full_extract_is_identity(self):
        assert simplify(T.extract(X, 7, 0)) is X

    def test_extract_of_extract_composes(self):
        wide = T.data_var("sw", 16)
        inner = T.extract(wide, 11, 4)
        outer = simplify(T.extract(inner, 5, 2))
        assert outer is simplify(T.extract(wide, 9, 6))

    def test_extract_of_concat_selects_side(self):
        a = T.data_var("sca", 8)
        b = T.data_var("scb", 8)
        combined = T.concat(a, b)
        assert simplify(T.extract(combined, 7, 0)) is b
        assert simplify(T.extract(combined, 15, 8)) is a


class TestConstantValue:
    def test_bv(self):
        assert constant_value(c(42)) == 42

    def test_bool(self):
        assert constant_value(T.TRUE) == 1
        assert constant_value(T.FALSE) == 0

    def test_nonconst(self):
        assert constant_value(X) is None


# -- property: simplification preserves semantics ---------------------------


@st.composite
def bv_terms(draw, depth=0):
    """Random 8-bit terms over two data variables."""
    if depth > 3 or draw(st.booleans()):
        return draw(
            st.sampled_from(
                [X, Y, c(0), c(1), c(0xFF), c(draw(st.integers(0, 255)))]
            )
        )
    op = draw(
        st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "not", "ite", "shl"])
    )
    a = draw(bv_terms(depth=depth + 1))
    if op == "not":
        return T.bv_not(a)
    b = draw(bv_terms(depth=depth + 1))
    if op == "add":
        return T.add(a, b)
    if op == "sub":
        return T.sub(a, b)
    if op == "mul":
        return T.mul(a, b)
    if op == "and":
        return T.bv_and(a, b)
    if op == "or":
        return T.bv_or(a, b)
    if op == "xor":
        return T.bv_xor(a, b)
    if op == "shl":
        return T.shl(a, b)
    cond_kind = draw(st.sampled_from(["eq", "ult", "ule"]))
    cond = {"eq": T.eq, "ult": T.ult, "ule": T.ule}[cond_kind](a, b)
    c2 = draw(bv_terms(depth=depth + 1))
    return T.ite(cond, b, c2)


@given(term=bv_terms(), x=st.integers(0, 255), y=st.integers(0, 255))
@settings(max_examples=300, deadline=None)
def test_simplify_preserves_semantics(term, x, y):
    env = {"sx": x, "sy": y}
    assert T.evaluate(simplify(term), env) == T.evaluate(term, env)


@given(term=bv_terms())
@settings(max_examples=100, deadline=None)
def test_simplify_is_idempotent(term, ):
    once = simplify(term)
    assert simplify(once) is once
