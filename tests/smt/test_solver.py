"""Tests for the layered solver facade."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.solver import Solver

X = T.data_var("so_x", 8)
Y = T.data_var("so_y", 8)


def c(v, w=8):
    return T.bv_const(v, w)


class TestCheckSat:
    def test_trivially_true(self):
        solver = Solver()
        assert solver.check_sat(T.TRUE).satisfiable
        assert solver.stats.by_simplify == 1

    def test_trivially_false(self):
        solver = Solver()
        assert not solver.check_sat(T.FALSE).satisfiable

    def test_decided_by_simplify(self):
        solver = Solver()
        assert not solver.check_sat(T.ne(X, X)).satisfiable
        assert solver.stats.by_sat == 0

    def test_decided_by_interval(self):
        solver = Solver()
        term = T.eq(T.bv_and(X, c(0x0F)), c(0xF0))
        assert not solver.check_sat(term).satisfiable
        assert solver.stats.by_interval == 1
        assert solver.stats.by_sat == 0

    def test_interval_precheck_can_be_disabled(self):
        solver = Solver(use_interval_precheck=False)
        term = T.eq(T.bv_and(X, c(0x0F)), c(0xF0))
        assert not solver.check_sat(term).satisfiable
        assert solver.stats.by_sat == 1

    def test_falls_through_to_sat_with_model(self):
        solver = Solver()
        result = solver.check_sat(
            T.bool_and(T.eq(T.add(X, Y), c(10)), T.eq(X, c(3)))
        )
        assert result.satisfiable
        assert result.model is not None
        assert (result.model["so_x"] + result.model["so_y"]) % 256 == 10

    def test_rejects_bv_term(self):
        with pytest.raises(T.SortError):
            Solver().check_sat(X)


class TestValidity:
    def test_tautology(self):
        solver = Solver()
        assert solver.is_valid(T.bool_or(T.eq(X, c(1)), T.ne(X, c(1))))

    def test_non_tautology(self):
        assert not Solver().is_valid(T.eq(X, c(1)))

    def test_masked_identity_valid(self):
        # (x & 0xF0) | (x & 0x0F) == x for all x.
        lhs = T.bv_or(T.bv_and(X, c(0xF0)), T.bv_and(X, c(0x0F)))
        assert Solver().is_valid(T.eq(lhs, X))


class TestProveEqual:
    def test_identical_terms(self):
        solver = Solver()
        assert solver.prove_equal(T.add(X, c(1)), T.add(X, c(1)))

    def test_commuted(self):
        assert Solver().prove_equal(T.add(X, Y), T.add(Y, X))

    def test_semantic_equality_needs_solver(self):
        # x + x == x << 1 (not syntactically equal after simplification).
        assert Solver().prove_equal(T.add(X, X), T.shl(X, c(1)))

    def test_inequality(self):
        assert not Solver().prove_equal(T.add(X, c(1)), X)

    def test_sort_mismatch(self):
        assert not Solver().prove_equal(T.TRUE, X)
        assert not Solver().prove_equal(X, T.data_var("so_w16", 16))


class TestFindConstant:
    def test_literal(self):
        assert Solver().find_constant(c(9)) == 9

    def test_simplifies_to_constant(self):
        assert Solver().find_constant(T.bv_and(X, c(0))) == 0

    def test_non_constant(self):
        assert Solver().find_constant(X) is None

    def test_semantically_constant(self):
        # (x | ~x) is all-ones for every x — only the solver can see it.
        expr = T.bv_or(X, T.bv_not(X))
        assert Solver().find_constant(expr) == 0xFF

    def test_bool_constant(self):
        assert Solver().find_constant(T.ule(c(0), X)) == 1
        assert Solver().find_constant(T.ult(X, c(0))) == 0
        assert Solver().find_constant(T.eq(X, c(3))) is None


@given(value=st.integers(0, 255))
@settings(max_examples=50, deadline=None)
def test_unsat_means_no_counterexample(value):
    """If check_sat says UNSAT, no concrete value satisfies the term."""
    solver = Solver()
    term = T.bool_and(T.eq(X, c(value)), T.ne(X, c(value)))
    result = solver.check_sat(term)
    assert not result.satisfiable
    assert T.evaluate(term, {"so_x": value}) == 0
