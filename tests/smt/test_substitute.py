"""Tests for the substitution engine (Flay's e-matching role)."""

import pytest

from repro.smt import terms as T
from repro.smt.substitute import Substitution, substitute, substitute_names

X = T.data_var("sub_x", 8)
C = T.control_var("sub_c", 8)


class TestSubstitution:
    def test_basic_replacement(self):
        expr = T.add(C, T.bv_const(1, 8))
        out = substitute(expr, {C: T.bv_const(4, 8)})
        assert out is T.bv_const(5, 8)

    def test_unmapped_variables_survive(self):
        expr = T.add(C, X)
        out = substitute(expr, {C: T.bv_const(0, 8)})
        assert out is X

    def test_replacement_may_contain_data_vars(self):
        # The paper's Fig 5b: assignments reference @h.eth.dst@.
        key = T.data_var("sub_key", 8)
        assignment = T.ite(T.eq(key, T.bv_const(1, 8)), T.bv_const(7, 8), T.bv_const(0, 8))
        expr = T.add(C, T.bv_const(0, 8))
        out = substitute(expr, {C: assignment})
        assert T.evaluate(out, {"sub_key": 1}) == 7
        assert T.evaluate(out, {"sub_key": 9}) == 0

    def test_width_mismatch_rejected(self):
        with pytest.raises(T.SortError):
            Substitution({C: T.bv_const(1, 16)})

    def test_non_variable_key_rejected(self):
        with pytest.raises(T.SortError):
            Substitution({T.add(X, X): T.bv_const(1, 8)})

    def test_no_simplify_option(self):
        expr = T.add(C, T.bv_const(1, 8))
        out = substitute(expr, {C: T.bv_const(4, 8)}, simplify_result=False)
        assert out.op == T.OP_ADD

    def test_memo_reuse_across_points(self):
        sub = Substitution({C: T.bv_const(3, 8)})
        shared = T.mul(C, T.bv_const(2, 8))
        a = sub.apply(T.add(shared, X))
        b = sub.apply(T.add(shared, T.bv_const(1, 8)))
        # The shared subterm must come out identical (memoized).
        assert a.args != b.args or a is b  # sanity: different top-level terms
        assert T.evaluate(b, {}) == 7

    def test_deep_expression(self):
        expr = C
        for _ in range(3000):
            expr = T.add(expr, T.bv_const(1, 8))
        out = substitute(expr, {C: T.bv_const(0, 8)})
        assert out is T.bv_const(3000 % 256, 8)

    def test_boolean_substitution(self):
        hit = T.control_var("sub_hit", 1)
        cond = T.eq(hit, T.bv_const(1, 1))
        out = substitute(cond, {hit: T.bv_const(1, 1)})
        assert out is T.TRUE

    def test_substitute_names(self):
        expr = T.add(C, X)
        out = substitute_names(expr, {"sub_c": T.bv_const(2, 8), "sub_x": T.bv_const(3, 8)})
        assert out is T.bv_const(5, 8)

    def test_substitute_names_ignores_unknown(self):
        expr = T.add(C, X)
        out = substitute_names(expr, {"nope": T.bv_const(2, 8)})
        assert out is T.add(C, X)

    def test_ite_under_substitution_collapses(self):
        sel = T.control_var("sub_sel", 8)
        expr = T.ite(T.eq(sel, T.bv_const(0, 8)), T.bv_const(0xAA, 8), X)
        assert substitute(expr, {sel: T.bv_const(0, 8)}) is T.bv_const(0xAA, 8)
        assert substitute(expr, {sel: T.bv_const(1, 8)}) is X
