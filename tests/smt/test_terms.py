"""Unit tests for the hash-consed term language."""

import pytest

from repro.smt import terms as T


class TestConstruction:
    def test_bv_const_masks_to_width(self):
        assert T.bv_const(0x1FF, 8).value == 0xFF

    def test_bv_const_rejects_nonpositive_width(self):
        with pytest.raises(T.SortError):
            T.bv_const(1, 0)

    def test_bool_const_identity(self):
        assert T.bool_const(True) is T.TRUE
        assert T.bool_const(False) is T.FALSE

    def test_var_kinds(self):
        data = T.data_var("x", 8)
        ctrl = T.control_var("c", 8)
        assert data.is_data_var and not data.is_control_var
        assert ctrl.is_control_var and not ctrl.is_data_var
        assert data.name == "x" and ctrl.name == "c"

    def test_width_mismatch_rejected(self):
        with pytest.raises(T.SortError):
            T.add(T.bv_const(1, 8), T.bv_const(1, 16))

    def test_bool_in_bv_position_rejected(self):
        with pytest.raises(T.SortError):
            T.add(T.TRUE, T.bv_const(1, 8))

    def test_bv_in_bool_position_rejected(self):
        with pytest.raises(T.SortError):
            T.bool_and(T.bv_const(1, 8), T.TRUE)

    def test_ite_branch_sorts_must_match(self):
        with pytest.raises(T.SortError):
            T.ite(T.TRUE, T.bv_const(1, 8), T.TRUE)

    def test_extract_bounds_checked(self):
        x = T.data_var("x", 8)
        with pytest.raises(T.SortError):
            T.extract(x, 8, 0)
        with pytest.raises(T.SortError):
            T.extract(x, 3, 5)

    def test_concat_width_is_sum(self):
        a = T.data_var("a", 8)
        b = T.data_var("b", 4)
        assert T.concat(a, b).width == 12

    def test_extract_width(self):
        x = T.data_var("x", 16)
        assert T.extract(x, 11, 4).width == 8

    def test_fresh_data_vars_are_distinct(self):
        a = T.fresh_data_var("p", 8)
        b = T.fresh_data_var("p", 8)
        assert a is not b
        assert a.name != b.name


class TestHashConsing:
    def test_same_construction_same_object(self):
        x = T.data_var("hc_x", 8)
        a = T.add(x, T.bv_const(1, 8))
        b = T.add(x, T.bv_const(1, 8))
        assert a is b

    def test_commutative_ops_canonicalized(self):
        x = T.data_var("hc_y", 8)
        y = T.data_var("hc_z", 8)
        assert T.add(x, y) is T.add(y, x)
        assert T.bv_and(x, y) is T.bv_and(y, x)
        assert T.eq(x, y) is T.eq(y, x)

    def test_sub_not_canonicalized(self):
        x = T.data_var("hc_s1", 8)
        y = T.data_var("hc_s2", 8)
        assert T.sub(x, y) is not T.sub(y, x)

    def test_cross_factory_equality_is_shallow(self):
        other = T.TermFactory()
        a = other.bv_const(5, 8)
        b = T.bv_const(5, 8)
        assert a == b  # leaves compare equal across factories
        assert a is not b

    def test_terms_not_picklable(self):
        import pickle

        with pytest.raises(TypeError):
            pickle.dumps(T.bv_const(1, 8))


class TestEvaluate:
    def test_arith(self):
        x = T.data_var("ev_x", 8)
        expr = T.add(T.mul(x, T.bv_const(3, 8)), T.bv_const(1, 8))
        assert T.evaluate(expr, {"ev_x": 10}) == 31

    def test_wraparound(self):
        x = T.data_var("ev_w", 8)
        assert T.evaluate(T.add(x, T.bv_const(1, 8)), {"ev_w": 255}) == 0
        assert T.evaluate(T.sub(x, T.bv_const(1, 8)), {"ev_w": 0}) == 255
        assert T.evaluate(T.neg(x), {"ev_w": 1}) == 255

    def test_bitwise(self):
        x = T.data_var("ev_b", 8)
        env = {"ev_b": 0b1100}
        assert T.evaluate(T.bv_and(x, T.bv_const(0b1010, 8)), env) == 0b1000
        assert T.evaluate(T.bv_or(x, T.bv_const(0b0011, 8)), env) == 0b1111
        assert T.evaluate(T.bv_xor(x, T.bv_const(0b1111, 8)), env) == 0b0011
        assert T.evaluate(T.bv_not(x), env) == 0b11110011

    def test_shifts_saturate_at_width(self):
        x = T.data_var("ev_sh", 8)
        assert T.evaluate(T.shl(x, T.bv_const(9, 8)), {"ev_sh": 0xFF}) == 0
        assert T.evaluate(T.lshr(x, T.bv_const(9, 8)), {"ev_sh": 0xFF}) == 0

    def test_concat_extract(self):
        a = T.data_var("ev_hi", 4)
        b = T.data_var("ev_lo", 4)
        combined = T.concat(a, b)
        env = {"ev_hi": 0xA, "ev_lo": 0x5}
        assert T.evaluate(combined, env) == 0xA5
        assert T.evaluate(T.extract(combined, 7, 4), env) == 0xA
        assert T.evaluate(T.extract(combined, 3, 0), env) == 0x5

    def test_comparisons(self):
        x = T.data_var("ev_c", 8)
        env = {"ev_c": 5}
        assert T.evaluate(T.ult(x, T.bv_const(6, 8)), env) == 1
        assert T.evaluate(T.ult(x, T.bv_const(5, 8)), env) == 0
        assert T.evaluate(T.ule(x, T.bv_const(5, 8)), env) == 1
        assert T.evaluate(T.eq(x, T.bv_const(5, 8)), env) == 1
        assert T.evaluate(T.ne(x, T.bv_const(5, 8)), env) == 0

    def test_boolean_connectives(self):
        p = T.bool_var("ev_p")
        q = T.bool_var("ev_q")
        env = {"ev_p": 1, "ev_q": 0}
        assert T.evaluate(T.bool_and(p, q), env) == 0
        assert T.evaluate(T.bool_or(p, q), env) == 1
        assert T.evaluate(T.bool_not(q), env) == 1
        assert T.evaluate(T.implies(p, q), env) == 0

    def test_ite(self):
        x = T.data_var("ev_i", 8)
        expr = T.ite(T.eq(x, T.bv_const(1, 8)), T.bv_const(10, 8), T.bv_const(20, 8))
        assert T.evaluate(expr, {"ev_i": 1}) == 10
        assert T.evaluate(expr, {"ev_i": 2}) == 20

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            T.evaluate(T.data_var("ev_missing", 8), {})

    def test_deep_chain_does_not_recurse(self):
        x = T.data_var("ev_deep", 8)
        expr = x
        for i in range(5000):
            expr = T.add(expr, T.bv_const(1, 8))
        assert T.evaluate(expr, {"ev_deep": 0}) == 5000 % 256


class TestTraversal:
    def test_iter_dag_unique(self):
        x = T.data_var("tr_x", 8)
        shared = T.add(x, T.bv_const(1, 8))
        expr = T.mul(shared, shared)
        nodes = list(T.iter_dag(expr))
        assert len(nodes) == len({id(n) for n in nodes})
        assert expr in nodes and x in nodes

    def test_variables_and_kinds(self):
        d = T.data_var("tr_d", 8)
        c = T.control_var("tr_c", 8)
        expr = T.ite(T.eq(c, T.bv_const(0, 8)), d, T.bv_const(1, 8))
        assert T.variables(expr) == {d, c}
        assert T.control_variables(expr) == {c}
        assert T.data_variables(expr) == {d}

    def test_dag_vs_tree_size(self):
        x = T.data_var("tr_sz", 8)
        shared = T.add(x, T.bv_const(1, 8))
        expr = T.mul(shared, shared)
        assert T.dag_size(expr) < T.tree_size(expr)

    def test_tree_size_deep_chain(self):
        x = T.data_var("tr_deep", 8)
        expr = x
        for _ in range(4000):
            expr = T.bv_not(expr)
        assert T.tree_size(expr) == 4001


class TestPrinting:
    def test_paper_notation(self):
        d = T.data_var("h.eth.dst", 48)
        c = T.control_var("t.action", 8)
        assert "@h.eth.dst@" in T.to_string(T.eq(d, T.bv_const(1, 48)))
        assert "|t.action|" in T.to_string(c)

    def test_ite_renders_question_colon(self):
        x = T.data_var("pr_x", 8)
        s = T.to_string(T.ite(T.eq(x, T.bv_const(0, 8)), T.bv_const(1, 8), x))
        assert "?" in s and ":" in s

    def test_depth_elision(self):
        x = T.data_var("pr_deep", 8)
        expr = x
        for _ in range(100):
            expr = T.add(expr, T.bv_const(1, 8))
        assert "..." in T.to_string(expr, max_depth=5)
