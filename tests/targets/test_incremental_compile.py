"""Tests for the incremental device-compiler model (future-work axis #1)."""

import pytest

from repro.core import Flay, FlayOptions
from repro.p4.parser import parse_program
from repro.runtime.entries import TableEntry, TernaryMatch
from repro.runtime.semantics import INSERT, Update
from repro.targets.tofino.incremental import (
    IncrementalCompileReport,
    IncrementalTofinoCompiler,
    diff_programs,
)

SOURCE = """
header h_t { bit<8> f; bit<8> g; }
struct headers_t { h_t h; }
struct meta_t { bit<8> a; bit<8> b; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set_a(bit<8> v) { meta.a = v; }
    action set_b(bit<8> v) { meta.b = v; }
    action noop() { }
    table t1 {
        key = { hdr.h.f: ternary; }
        actions = { set_a; noop; }
        default_action = noop();
    }
    table t2 {
        key = { hdr.h.g: exact; }
        actions = { set_b; noop; }
        default_action = noop();
    }
    apply { t1.apply(); t2.apply(); }
}
Pipeline(P(), C()) main;
"""


class TestDiff:
    def test_identical_programs_are_noop(self):
        program = parse_program(SOURCE)
        delta = diff_programs(program, program)
        assert delta.is_noop
        assert len(delta.unchanged_tables) == 2

    def test_removed_table_detected(self):
        before = parse_program(SOURCE)
        after = parse_program(SOURCE.replace("t2.apply();", ""))
        # t2 still declared but unapplied — the signature set keys off the
        # declarations, so drop the declaration too.
        after = parse_program(
            SOURCE.replace("t2.apply();", "").replace(
                """    table t2 {
        key = { hdr.h.g: exact; }
        actions = { set_b; noop; }
        default_action = noop();
    }
""",
                "",
            )
        )
        delta = diff_programs(before, after)
        assert delta.removed_tables == ("C.t2",)
        assert delta.unchanged_tables == ("C.t1",)

    def test_match_kind_change_marks_changed(self):
        before = parse_program(SOURCE)
        after = parse_program(SOURCE.replace("hdr.h.f: ternary;", "hdr.h.f: exact;"))
        delta = diff_programs(before, after)
        assert delta.changed_tables == ("C.t1",)

    def test_action_body_change_marks_changed(self):
        before = parse_program(SOURCE)
        after = parse_program(SOURCE.replace("meta.a = v;", "meta.a = v + 1;"))
        delta = diff_programs(before, after)
        assert "C.t1" in delta.changed_tables

    def test_parser_change_detected(self):
        before = parse_program(SOURCE)
        after = parse_program(
            SOURCE.replace("pkt_extract(hdr.h); transition accept;", "transition accept;")
        )
        delta = diff_programs(before, after)
        assert delta.parser_changed


class TestIncrementalCompiler:
    def test_first_compile_is_monolithic(self):
        compiler = IncrementalTofinoCompiler()
        report = compiler.compile(parse_program(SOURCE))
        assert not isinstance(report, IncrementalCompileReport)

    def test_second_compile_charges_only_delta(self):
        compiler = IncrementalTofinoCompiler()
        compiler.compile(parse_program(SOURCE))
        changed = parse_program(SOURCE.replace("hdr.h.f: ternary;", "hdr.h.f: exact;"))
        report = compiler.compile(changed)
        assert isinstance(report, IncrementalCompileReport)
        assert report.delta.changed_tables == ("C.t1",)
        assert report.modeled_seconds < report.monolithic_seconds
        assert report.speedup > 1

    def test_parser_change_costs_more(self):
        compiler = IncrementalTofinoCompiler()
        base = parse_program(SOURCE)
        compiler.compile(base)
        table_only = compiler.compile(
            parse_program(SOURCE.replace("hdr.h.f: ternary;", "hdr.h.f: exact;"))
        )
        compiler2 = IncrementalTofinoCompiler()
        compiler2.compile(base)
        with_parser = compiler2.compile(
            parse_program(
                SOURCE.replace(
                    "pkt_extract(hdr.h); transition accept;",
                    "transition accept;",
                ).replace("hdr.h.f: ternary;", "hdr.h.f: exact;")
            )
        )
        assert with_parser.modeled_seconds > table_only.modeled_seconds

    def test_plugs_into_flay_runtime(self):
        """The incremental compiler is a drop-in device compiler: across
        the Fig. 3-style sequence it only pays for the table that changed."""
        from repro.core.incremental import IncrementalSpecializer

        program = parse_program(SOURCE)
        compiler = IncrementalTofinoCompiler()
        runtime = IncrementalSpecializer(program, device_compiler=compiler)
        runtime.process_update(
            Update("t1", INSERT, TableEntry((TernaryMatch(1, 0xFF),), "set_a", (2,), 1))
        )
        assert compiler.compile_count >= 2
        last = compiler.reports[-1]
        assert isinstance(last, IncrementalCompileReport)
        # Only t1's implementation changed; t2 is untouched.
        assert "C.t2" not in last.delta.changed_tables
        assert last.speedup > 1
