"""Tests for the reference interpreter (BMv2 stand-in)."""

import pytest

from repro.analysis import analyze
from repro.p4.parser import parse_program
from repro.runtime.entries import ExactMatch, LpmMatch, TableEntry, TernaryMatch
from repro.runtime.semantics import ControlPlaneState, INSERT, Update
from repro.targets.bmv2 import Interpreter, Packet, PacketBuilder

SOURCE = """
header eth_t { bit<48> dst; bit<16> type; }
header ipv4_t { bit<8> ttl; bit<32> dst; }
struct headers_t { eth_t eth; ipv4_t ipv4; }
struct meta_t { bit<9> port; bit<8> mark; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start {
        pkt_extract(hdr.eth);
        transition select(hdr.eth.type) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt_extract(hdr.ipv4);
        transition accept;
    }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action fwd(bit<9> port) { meta.port = port; }
    action drop_it() { mark_to_drop(); }
    action noop() { }
    table routes {
        key = { hdr.ipv4.dst: lpm; }
        actions = { fwd; drop_it; noop; }
        default_action = drop_it();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.ttl == 0) {
                drop_it();
            } else {
                hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                routes.apply();
            }
        }
    }
}
Pipeline(P(), C()) main;
"""


def eth_ipv4_packet(dst_ip=0x0A000001, ttl=64, ether_type=0x0800):
    return (
        PacketBuilder()
        .push(0x001122334455, 48)
        .push(ether_type, 16)
        .push(ttl, 8)
        .push(dst_ip, 32)
        .build()
    )


@pytest.fixture(scope="module")
def setup():
    program = parse_program(SOURCE)
    model = analyze(program)
    return program, model


class TestExecution:
    def test_parse_and_route(self, setup):
        program, model = setup
        state = ControlPlaneState(model)
        state.apply_update(
            Update("routes", INSERT, TableEntry((LpmMatch(0x0A000000, 8),), "fwd", (7,)))
        )
        result = Interpreter(program).run(eth_ipv4_packet(), state)
        assert not result.dropped
        assert result.store["meta.port"] == 7
        assert result.store["hdr.ipv4.ttl"] == 63

    def test_miss_runs_default(self, setup):
        program, model = setup
        state = ControlPlaneState(model)
        result = Interpreter(program).run(eth_ipv4_packet(), state)
        assert result.dropped  # default is drop_it

    def test_longest_prefix_wins(self, setup):
        program, model = setup
        state = ControlPlaneState(model)
        state.apply_update(
            Update("routes", INSERT, TableEntry((LpmMatch(0x0A000000, 8),), "fwd", (1,)))
        )
        state.apply_update(
            Update("routes", INSERT, TableEntry((LpmMatch(0x0A000000, 24),), "fwd", (2,)))
        )
        result = Interpreter(program).run(eth_ipv4_packet(0x0A000099), state)
        assert result.store["meta.port"] == 2

    def test_non_ip_packet_skips_control(self, setup):
        program, _ = setup
        result = Interpreter(program).run(eth_ipv4_packet(ether_type=0x86DD))
        # Select has no 0x86DD case... default accepts without ipv4.
        assert result.store["hdr.ipv4.$valid"] == 0
        assert not result.dropped

    def test_ttl_zero_dropped(self, setup):
        program, model = setup
        state = ControlPlaneState(model)
        result = Interpreter(program).run(eth_ipv4_packet(ttl=0), state)
        assert result.dropped

    def test_truncated_packet_rejected(self, setup):
        program, _ = setup
        short = Packet(bytes(4))  # too short for ethernet
        result = Interpreter(program).run(short)
        assert result.parser_error and result.dropped

    def test_trace_records_steps(self, setup):
        program, model = setup
        result = Interpreter(program).run(eth_ipv4_packet(), ControlPlaneState(model))
        assert "extract:hdr.eth" in result.trace
        assert any(step.startswith("table:") for step in result.trace)


PRIORITY_SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    action set(bit<8> v) { meta.m = v; }
    action noop() { }
    table t {
        key = { hdr.h.f: ternary; }
        actions = { set; noop; }
        default_action = noop();
    }
    apply { t.apply(); }
}
Pipeline(P(), C()) main;
"""


class TestTernaryPriority:
    def test_higher_priority_wins(self):
        program = parse_program(PRIORITY_SOURCE)
        model = analyze(program)
        state = ControlPlaneState(model)
        state.apply_update(Update("t", INSERT, TableEntry(
            (TernaryMatch(0, 0),), "set", (1,), priority=1)))
        state.apply_update(Update("t", INSERT, TableEntry(
            (TernaryMatch(0x42, 0xFF),), "set", (2,), priority=10)))
        packet = PacketBuilder().push(0x42, 8).build()
        result = Interpreter(program).run(packet, state)
        assert result.store["meta.m"] == 2
        other = PacketBuilder().push(0x41, 8).build()
        result = Interpreter(program).run(other, state)
        assert result.store["meta.m"] == 1


REGISTER_SOURCE = """
header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
parser P(inout headers_t hdr, inout meta_t meta) {
    state start { pkt_extract(hdr.h); transition accept; }
}
control C(inout headers_t hdr, inout meta_t meta) {
    register<bit<8>>(16) reg;
    apply {
        reg.read(meta.m, 8w3);
        meta.m = meta.m + 1;
        reg.write(8w3, meta.m);
    }
}
Pipeline(P(), C()) main;
"""


class TestExterns:
    def test_registers_persist_across_packets(self):
        program = parse_program(REGISTER_SOURCE)
        interp = Interpreter(program)
        registers = {}
        packet = PacketBuilder().push(0, 8).build()
        first = interp.run(packet, registers=registers)
        second = interp.run(packet, registers=registers)
        assert first.store["meta.m"] == 1
        assert second.store["meta.m"] == 2

    def test_intrinsic_metadata_injected(self):
        source = PRIORITY_SOURCE.replace(
            "struct meta_t { bit<8> m; }",
            "struct intr_t { bit<9> ingress_port; }\nstruct meta_t { bit<8> m; }",
        ).replace(
            "(inout headers_t hdr, inout meta_t meta)",
            "(inout headers_t hdr, inout meta_t meta, inout intr_t intr)",
        )
        program = parse_program(source)
        packet = PacketBuilder().push(0, 8).build()
        result = Interpreter(program).run(
            packet, intrinsic={"intr.ingress_port": 5}
        )
        assert result.store["intr.ingress_port"] == 5

    def test_unknown_intrinsic_path_rejected(self):
        program = parse_program(PRIORITY_SOURCE)
        packet = PacketBuilder().push(0, 8).build()
        from repro.targets.bmv2 import InterpreterError

        with pytest.raises(InterpreterError):
            Interpreter(program).run(packet, intrinsic={"bogus.path": 1})
