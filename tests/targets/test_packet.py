"""Tests for bit-level packets."""

import pytest

from repro.targets.bmv2.packet import Packet, PacketBuilder, PacketUnderflow


class TestPacket:
    def test_extract_msb_first(self):
        packet = Packet(bytes([0b10110000]))
        assert packet.extract_bits(1) == 1
        assert packet.extract_bits(2) == 0b01
        assert packet.extract_bits(5) == 0b10000

    def test_extract_across_bytes(self):
        packet = Packet(bytes([0xAB, 0xCD]))
        assert packet.extract_bits(12) == 0xABC
        assert packet.extract_bits(4) == 0xD

    def test_underflow(self):
        packet = Packet(bytes([0xFF]))
        packet.extract_bits(8)
        with pytest.raises(PacketUnderflow):
            packet.extract_bits(1)

    def test_reset(self):
        packet = Packet(bytes([0x42]))
        packet.extract_bits(8)
        packet.reset()
        assert packet.extract_bits(8) == 0x42

    def test_remaining_bits(self):
        packet = Packet(bytes([0, 0]))
        packet.extract_bits(3)
        assert packet.remaining_bits == 13


class TestBuilder:
    def test_round_trip(self):
        packet = (
            PacketBuilder()
            .push(0xABC, 12)
            .push(0x5, 4)
            .push(0xDEADBEEF, 32)
            .build()
        )
        assert packet.extract_bits(12) == 0xABC
        assert packet.extract_bits(4) == 0x5
        assert packet.extract_bits(32) == 0xDEADBEEF

    def test_padding(self):
        packet = PacketBuilder().push(1, 3).build()
        assert packet.bit_length == 8  # padded to byte boundary

    def test_pad_to_bytes(self):
        packet = PacketBuilder().push(1, 8).build(pad_to_bytes=64)
        assert len(packet.data) == 64

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            PacketBuilder().push(256, 8)

    def test_push_bytes(self):
        packet = PacketBuilder().push_bytes(b"\x12\x34").build()
        assert packet.extract_bits(16) == 0x1234
