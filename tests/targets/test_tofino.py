"""Tests for the Tofino RMT resource model, allocator, and compiler model."""

import pytest

from repro.ir import build_dependency_graph
from repro.p4.parser import parse_program
from repro.programs import registry
from repro.targets.tofino import (
    PipelineSpec,
    ResourceError,
    TOFINO1,
    TOFINO2,
    TofinoCompiler,
    allocate,
)
from repro.targets.tofino.resources import table_memory_bits


def _program(locals_: str, body: str) -> str:
    return f"""
header h_t {{ bit<8> f; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> a; bit<8> b; bit<8> c; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
{locals_}
    apply {{ {body} }}
}}
Pipeline(P(), C()) main;
"""


CHAIN = """
    action s1(bit<8> v) { meta.a = v; }
    action s2(bit<8> v) { meta.b = v; }
    action s3(bit<8> v) { meta.c = v; }
    action noop() { }
    table t1 { key = { hdr.h.f: exact; } actions = { s1; noop; } default_action = noop(); }
    table t2 { key = { meta.a: exact; } actions = { s2; noop; } default_action = noop(); }
    table t3 { key = { meta.b: exact; } actions = { s3; noop; } default_action = noop(); }
"""


class TestAllocator:
    def test_dependent_chain_uses_consecutive_stages(self):
        program = parse_program(_program(CHAIN, "t1.apply(); t2.apply(); t3.apply();"))
        report = allocate(program)
        assert report.stages_used == 3

    def test_independent_tables_share_stage(self):
        locals_ = CHAIN.replace("meta.a: exact", "hdr.h.f: exact").replace(
            "meta.b: exact", "hdr.h.f: exact"
        )
        # All three read hdr.h.f and write different fields: no deps.
        program = parse_program(_program(locals_, "t1.apply(); t2.apply(); t3.apply();"))
        report = allocate(program)
        assert report.stages_used == 1

    def test_placement_respects_final_positions(self):
        program = parse_program(_program(CHAIN, "t1.apply(); t2.apply(); t3.apply();"))
        report = allocate(program)
        placement = {}
        for stage in report.stage_usages:
            for name in stage.tables:
                placement[name] = stage.index
        assert placement["C.t1"] < placement["C.t2"] < placement["C.t3"]

    def test_strict_mode_raises_when_over_capacity(self):
        tiny = PipelineSpec(name="tiny", num_stages=1)
        program = parse_program(_program(CHAIN, "t1.apply(); t2.apply(); t3.apply();"))
        with pytest.raises(ResourceError):
            allocate(program, tiny, strict=True)

    def test_oversized_table_spans_stages(self):
        locals_ = """
    action noop() { }
    action fwd(bit<8> v) { meta.a = v; }
    table big {
        key = { hdr.h.f: ternary; }
        actions = { fwd; noop; }
        default_action = noop();
        size = 10000000;
    }
"""
        program = parse_program(_program(locals_, "big.apply();"))
        report = allocate(program)
        assert report.stages_used > 1  # the table spans stages, no hang

    def test_tofino1_smaller_than_tofino2(self):
        assert TOFINO1.num_stages < TOFINO2.num_stages

    def test_report_describe(self):
        program = parse_program(_program(CHAIN, "t1.apply();"))
        text = allocate(program).describe()
        assert "stages" in text and "SRAM" in text


class TestMemoryModel:
    def test_exact_uses_sram_only(self):
        sram, tcam = table_memory_bits(32, 0, 0, 1024, 16)
        assert sram > 0 and tcam == 0

    def test_ternary_uses_tcam(self):
        _, tcam = table_memory_bits(0, 32, 0, 1024, 0)
        assert tcam == 32 * 1024 * 2

    def test_memory_scales_with_entries(self):
        small = table_memory_bits(32, 0, 0, 100, 16)
        large = table_memory_bits(32, 0, 0, 1000, 16)
        assert large[0] > small[0]


class TestCompilerModel:
    def test_table1_shape(self):
        """Modeled times preserve the paper's Table 1 ordering and are
        within 20% of the published numbers."""
        modeled = {}
        for name in registry.TABLE1_PROGRAMS:
            entry = registry.get(name)
            report = TofinoCompiler(program_name=name).compile(entry.parse())
            modeled[name] = report.modeled_seconds
            assert (
                abs(report.modeled_seconds - entry.paper_compile_seconds)
                <= 0.2 * entry.paper_compile_seconds
            ), f"{name}: {report.modeled_seconds} vs {entry.paper_compile_seconds}"
        assert modeled["switch"] > modeled["scion"] > modeled["beaucoup"]

    def test_specialization_reduces_modeled_time(self):
        """A program stripped of half its tables must model faster —
        monotonicity the incremental story depends on."""
        program = parse_program(_program(CHAIN, "t1.apply(); t2.apply(); t3.apply();"))
        small = parse_program(_program(CHAIN, "t1.apply();"))
        full_report = TofinoCompiler().compile(program)
        small_report = TofinoCompiler().compile(small)
        assert small_report.modeled_seconds < full_report.modeled_seconds

    def test_compile_counts(self):
        compiler = TofinoCompiler()
        program = parse_program(_program(CHAIN, "t1.apply();"))
        compiler.compile(program)
        compiler.compile(program)
        assert compiler.compile_count == 2

    def test_floor_clamps(self):
        from repro.targets.tofino.compiler import CostModel

        model = CostModel()
        assert model.estimate(10**6, 0, 10**6, 0) == model.floor_seconds
