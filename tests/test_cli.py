"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_stats(capsys):
    assert main(["stats", "corpus:fig3"]) == 0
    out = capsys.readouterr().out
    assert "statements:     5" in out
    assert "tables:         1" in out


def test_analyze(capsys):
    assert main(["analyze", "corpus:fig5"]) == 0
    out = capsys.readouterr().out
    assert "program points:" in out
    assert "analysis time:" in out


def test_analyze_dump_points(capsys):
    assert main(["analyze", "corpus:fig5", "--dump-points"]) == 0
    out = capsys.readouterr().out
    assert "|Fig5Ingress.port_table.action|" in out


def test_specialize_without_config_removes_empty_table(capsys):
    assert main(["specialize", "corpus:fig3"]) == 0
    captured = capsys.readouterr()
    assert "eth_table" not in captured.out
    assert "specializations" in captured.err


def test_specialize_with_config(tmp_path, capsys):
    config = {
        "tables": {
            "Fig3Ingress.eth_table": [
                {
                    "match": [{"ternary": ["0x2", "0xFFFFFFFFFFFF"]}],
                    "action": "set",
                    "args": ["0x900"],
                    "priority": 10,
                }
            ]
        }
    }
    config_path = tmp_path / "cfg.json"
    config_path.write_text(json.dumps(config))
    out_path = tmp_path / "specialized.p4"
    assert main([
        "specialize", "corpus:fig3",
        "--config", str(config_path),
        "--output", str(out_path),
    ]) == 0
    text = out_path.read_text()
    assert "hdr.eth.dst: exact;" in text  # narrowed by the full mask
    assert "drop" not in text

    # The emitted program must parse.
    from repro.p4.parser import parse_program

    parse_program(text)


def test_specialize_stats_prints_cache_counters(tmp_path, capsys):
    config = {
        "tables": {
            "Fig3Ingress.eth_table": [
                {
                    "match": [{"ternary": ["0x2", "0xFFFFFFFFFFFF"]}],
                    "action": "set",
                    "args": ["0x900"],
                    "priority": 10,
                }
            ]
        }
    }
    config_path = tmp_path / "cfg.json"
    config_path.write_text(json.dumps(config))
    assert main([
        "specialize", "corpus:fig3", "--config", str(config_path), "--stats",
    ]) == 0
    err = capsys.readouterr().err
    assert "cache statistics" in err
    for layer in ("substitution", "solver-memo", "cnf-fragments", "active-entries"):
        assert layer in err


def test_specialize_batch_executor_flag(tmp_path, capsys):
    """--batch with each --executor (and the auto-detect --workers default)
    produces byte-identical output."""
    config = {
        "tables": {
            "Fig3Ingress.eth_table": [
                {
                    "match": [{"ternary": ["0x2", "0xFFFFFFFFFFFF"]}],
                    "action": "set",
                    "args": ["0x900"],
                    "priority": 10,
                }
            ]
        }
    }
    config_path = tmp_path / "cfg.json"
    config_path.write_text(json.dumps(config))
    outputs = {}
    for executor in ("serial", "thread", "process"):
        out_path = tmp_path / f"specialized-{executor}.p4"
        assert main([
            "specialize", "corpus:fig3",
            "--config", str(config_path),
            "--batch", "--executor", executor,
            "--output", str(out_path),
        ]) == 0
        outputs[executor] = out_path.read_text()
        assert "batch of 1" in capsys.readouterr().err
    assert outputs["serial"] == outputs["thread"] == outputs["process"]


def test_specialize_effort_none(capsys):
    assert main(["specialize", "corpus:fig3", "--effort", "none"]) == 0
    out = capsys.readouterr().out
    assert "eth_table" in out  # untouched


def test_compile_tofino(capsys):
    assert main(["compile", "corpus:fig5", "--target", "tofino", "--stages"]) == 0
    out = capsys.readouterr().out
    assert "modeled" in out
    assert "stage  0" in out


def test_compile_bmv2(capsys):
    assert main(["compile", "corpus:fig5", "--target", "bmv2"]) == 0
    assert "bmv2" in capsys.readouterr().out


def test_corpus_listing(capsys):
    assert main(["corpus"]) == 0
    out = capsys.readouterr().out
    for name in ("scion", "switch", "middleblock", "dash"):
        assert name in out


def test_program_from_file(tmp_path, capsys):
    from repro.programs.fig3 import source

    path = tmp_path / "prog.p4"
    path.write_text(source())
    assert main(["stats", str(path)]) == 0
    assert "statements" in capsys.readouterr().out


def test_lint_clean_program(capsys):
    assert main(["lint", "corpus:scion"]) == 0
    captured = capsys.readouterr()
    assert "no findings" in captured.err


def test_lint_reports_positioned_findings(capsys):
    assert main(["lint", "corpus:switch"]) == 0
    out = capsys.readouterr().out
    assert "[dead-action]" in out
    assert "[unreachable-branch]" in out
    # Findings carry line:column positions.
    assert "corpus:switch:246:12" in out


def test_lint_fail_on_threshold(capsys):
    # switch has warnings but no errors: default threshold passes,
    # lowering it to warning fails.
    assert main(["lint", "corpus:switch", "--fail-on", "error"]) == 0
    capsys.readouterr()
    assert main(["lint", "corpus:switch", "--fail-on", "warning"]) == 1


def test_specialize_no_prune_is_byte_identical(tmp_path, capsys):
    out_a = tmp_path / "pruned.p4"
    out_b = tmp_path / "no_prune.p4"
    assert main(["specialize", "corpus:fig3", "-o", str(out_a)]) == 0
    err = capsys.readouterr().err
    assert "prune:" in err
    assert main([
        "specialize", "corpus:fig3", "--no-prune", "-o", str(out_b)
    ]) == 0
    err = capsys.readouterr().err
    assert "prune:" not in err
    assert out_a.read_text() == out_b.read_text()
