"""The benchmark-artifact validator, and the committed artifacts themselves."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

from check_bench import SPECS, check_file, main  # noqa: E402


def _write(tmp_path: Path, name: str, payload) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def _good_bench9(tmp_path: Path) -> dict:
    payload = {key: 1.0 for key in SPECS["BENCH_9.json"]["required"]}
    payload["fleet_dedup_ratio"] = 8.0
    payload["fleet_dedup_ratio_floor"] = 4.0
    payload["restore_speedup_vs_cold"] = 5.0
    payload["restore_speedup_vs_cold_floor"] = 3.0
    return payload


class TestCheckFile:
    def test_accepts_valid_artifact(self, tmp_path):
        path = _write(tmp_path, "BENCH_9.json", _good_bench9(tmp_path))
        assert check_file(path) == []

    def test_missing_required_key(self, tmp_path):
        payload = _good_bench9(tmp_path)
        del payload["storm_p99_ms"]
        path = _write(tmp_path, "BENCH_9.json", payload)
        assert any("storm_p99_ms" in p for p in check_file(path))

    def test_metric_below_floor(self, tmp_path):
        payload = _good_bench9(tmp_path)
        payload["fleet_dedup_ratio"] = 2.0  # floor is 4.0
        path = _write(tmp_path, "BENCH_9.json", payload)
        assert any("below its floor" in p for p in check_file(path))

    def test_floor_without_metric(self, tmp_path):
        payload = _good_bench9(tmp_path)
        payload["orphan_floor"] = 1.0
        path = _write(tmp_path, "BENCH_9.json", payload)
        assert any("no matching metric" in p for p in check_file(path))

    def test_non_numeric_metric(self, tmp_path):
        payload = _good_bench9(tmp_path)
        payload["storm_p99_ms"] = "fast"
        path = _write(tmp_path, "BENCH_9.json", payload)
        assert any("should be numeric" in p for p in check_file(path))

    def test_false_parity_flag(self, tmp_path):
        payload = {key: 1.0 for key in SPECS["BENCH_8.json"]["required"]}
        payload["scion_strict_parity"] = True
        payload["switch_strict_parity"] = False
        path = _write(tmp_path, "BENCH_8.json", payload)
        assert any("must be true" in p for p in check_file(path))

    def test_unregistered_artifact(self, tmp_path):
        path = _write(tmp_path, "BENCH_99.json", {"x": 1})
        assert any("no spec registered" in p for p in check_file(path))

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "BENCH_9.json"
        path.write_text("{not json")
        assert any("unreadable" in p for p in check_file(str(path)))


class TestMain:
    def test_exit_codes(self, tmp_path):
        good = _write(tmp_path, "BENCH_9.json", _good_bench9(tmp_path))
        assert main([good]) == 0
        bad_dir = tmp_path / "bad"
        bad_dir.mkdir()
        bad_payload = _good_bench9(tmp_path)
        bad_payload["fleet_dedup_ratio"] = 0.5
        bad = _write(bad_dir, "BENCH_9.json", bad_payload)
        assert main([bad]) == 1

    def test_no_artifacts_fails(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([]) == 1


class TestCommittedArtifacts:
    def test_committed_artifacts_validate(self):
        # The real gate CI runs: every committed BENCH_*.json must meet
        # its own schema and embedded floors.
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_bench.py")],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_bench6_scion_floor_is_tracked(self):
        # ISSUE 10 tentpole: the scion gate ratio is now a *win* (the
        # lazy 2b pool + table-verdict memo closed the old ≈0.78× gap),
        # and the committed floor pins it as one — a regression back
        # toward neutral cannot land silently.
        data = json.loads((REPO / "BENCH_6.json").read_text())
        assert data["scion_verdict_speedup_floor"] == 1.2
        assert data["scion_verdict_speedup"] >= data["scion_verdict_speedup_floor"]
