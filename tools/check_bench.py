"""CI gate: schema + floor validation for the committed ``BENCH_*.json``.

Every benchmark that dumps a JSON artifact also commits one reference
copy at the repo root.  This validator keeps those artifacts honest:

* **schema** — each file must be a flat JSON object containing every
  key its spec lists (a bench silently dropping a metric is a
  regression in the artifact contract, not a flaky number);
* **floors** — the benches embed their acceptance floors alongside the
  measurements (``<metric>_floor`` next to ``<metric>``); every such
  pair must satisfy ``metric >= floor``, so a committed artifact that
  no longer meets its own bar cannot land;
* **truths** — boolean parity flags (differential results) must be true.

Timing values themselves are machine-dependent and deliberately *not*
floored — only ratios and counts the benches export as floors are.

Run locally with ``python tools/check_bench.py`` (from the repo root)
or pass explicit paths: ``python tools/check_bench.py BENCH_9.json``.
"""

import glob
import json
import numbers
import os
import sys

#: Required keys per artifact.  A file at the repo root with no spec
#: entry fails validation: new benches must register their contract.
SPECS = {
    "BENCH_6.json": {
        "required": [
            "stream_count",
            "switch_gated_verdict_ms",
            "switch_ungated_verdict_ms",
            "switch_verdict_speedup",
            "switch_verdict_speedup_floor",
            "switch_solver_free_rate",
            "switch_solver_free_rate_floor",
            "switch_witness_harvested",
            "switch_witness_harvested_warmup",
            "switch_lazy_harvested",
            "switch_lazy_harvested_warmup",
            "switch_table_verdict_hits",
            "switch_table_verdict_misses",
            "scion_gated_verdict_ms",
            "scion_ungated_verdict_ms",
            "scion_verdict_speedup",
            "scion_verdict_speedup_floor",
            "scion_witness_harvested",
            "scion_witness_harvested_warmup",
            "scion_lazy_harvested",
            "scion_lazy_harvested_warmup",
            "scion_table_verdict_hits",
            "scion_table_verdict_misses",
        ],
    },
    "BENCH_7.json": {
        "required": [
            "cpu_count",
            "scion_serial_w1_ms",
            "scion_thread_w4_ms",
            "scion_process_w4_ms",
            "scion_thread_w4_speedup_vs_serial",
            "switch_serial_w1_ms",
            "switch_thread_w4_ms",
            "switch_process_w4_ms",
        ],
    },
    "BENCH_8.json": {
        "required": [
            "scion_cold_pruned_ms",
            "scion_cold_no_prune_ms",
            "scion_cnf_clauses",
            "scion_strict_parity",
            "switch_cold_pruned_ms",
            "switch_cold_no_prune_ms",
            "switch_cnf_clauses",
            "switch_strict_parity",
        ],
        "truthy": ["scion_strict_parity", "switch_strict_parity"],
    },
    "BENCH_9.json": {
        "required": [
            "switches",
            "fleet_dedup_ratio",
            "fleet_dedup_ratio_floor",
            "shared_cnf_fragments",
            "isolated_cnf_fragments",
            "storm_p50_ms",
            "storm_p99_ms",
            "cold_replay_ms",
            "restore_ms",
            "restore_speedup_vs_cold",
            "restore_speedup_vs_cold_floor",
            "snapshot_bytes",
        ],
    },
}

FLOOR_SUFFIX = "_floor"


def check_file(path: str) -> list:
    """All violations for one artifact, as human-readable strings."""
    name = os.path.basename(path)
    problems = []
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{name}: unreadable ({exc})"]
    if not isinstance(data, dict):
        return [f"{name}: expected a JSON object, got {type(data).__name__}"]

    spec = SPECS.get(name)
    if spec is None:
        return [f"{name}: no spec registered in tools/check_bench.py"]

    truthy = set(spec.get("truthy", ()))
    for key in spec["required"]:
        if key not in data:
            problems.append(f"{name}: missing required key {key!r}")
        elif key not in truthy and not isinstance(data[key], numbers.Real):
            problems.append(
                f"{name}: {key!r} should be numeric, got {data[key]!r}"
            )
    for key in truthy:
        if key in data and data[key] is not True:
            problems.append(f"{name}: {key!r} must be true, got {data[key]!r}")

    for key, floor in sorted(data.items()):
        if not key.endswith(FLOOR_SUFFIX):
            continue
        metric = key[: -len(FLOOR_SUFFIX)]
        if metric not in data:
            problems.append(f"{name}: {key!r} has no matching metric {metric!r}")
            continue
        value = data[metric]
        if not isinstance(value, numbers.Real) or not isinstance(
            floor, numbers.Real
        ):
            problems.append(f"{name}: {metric!r}/{key!r} must both be numeric")
        elif value < floor:
            problems.append(
                f"{name}: {metric} = {value:.4g} below its floor {floor:.4g}"
            )
    return problems


def main(argv) -> int:
    paths = argv or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("check_bench: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    failures = []
    for path in paths:
        problems = check_file(path)
        status = "FAIL" if problems else "ok"
        print(f"check_bench: {os.path.basename(path)} {status}")
        failures.extend(problems)
    for problem in failures:
        print(f"  {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
