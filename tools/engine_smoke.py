#!/usr/bin/env python
"""CI smoke check: the staged engine runs cold + warm and emits events.

Exercises the full cold pipeline (parse → typecheck → analyze → encode →
specialize → lower) and the warm per-update path against a corpus
program, and asserts the typed event stream is non-empty and well-formed.
Exits non-zero on any violation; prints the event summary on success.
"""

import sys

from repro.core import Flay, FlayOptions
from repro.engine import (
    EventBus,
    PassFinished,
    PassStarted,
    TargetCompiled,
    UpdateProcessed,
)
from repro.programs import registry
from repro.runtime.fuzzer import EntryFuzzer


def main() -> int:
    bus = EventBus()
    log = bus.attach_log()
    flay = Flay(registry.load("fig3"), FlayOptions(target="tofino"), bus=bus)

    cold = [e.pass_name for e in log.of_type(PassFinished)]
    assert cold == [
        "parse", "typecheck", "prune", "analyze", "encode", "specialize",
        "lower",
    ], f"unexpected cold pipeline: {cold}"
    assert log.count(TargetCompiled) == 1, "cold lowering must compile once"

    fuzzer = EntryFuzzer(flay.model, seed=0)
    table = sorted(flay.model.tables)[0]
    for update in fuzzer.insert_burst(table, 5):
        flay.process_update(update)
    flay.process_batch(fuzzer.insert_burst(table, 20))

    outcomes = log.of_type(UpdateProcessed)
    assert len(outcomes) == 6, f"expected 6 outcomes, got {len(outcomes)}"
    assert outcomes[-1].kind == "batch" and outcomes[-1].update_count == 20
    assert all(o.forwarded != o.recompiled for o in outcomes)
    assert any(e.stage == "warm" for e in log.of_type(PassStarted))
    assert len(log) > 0, "event stream must be non-empty"

    print(f"engine smoke OK: {len(log)} events — {log.summary()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
