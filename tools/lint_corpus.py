"""CI gate: ``repro lint`` over every corpus program, against a baseline.

Known findings on the corpus (the switch kitchen-sink carries real dead
code and dead actions by design) are recorded in ``BASELINE`` as
``(program, code) -> count``.  The job fails when a program produces a
finding the baseline does not cover — a *new* warning — or when a
baseline entry stops firing, so stale entries cannot hide regressions.

Run locally with ``PYTHONPATH=src python tools/lint_corpus.py``.
"""

import sys

from repro.analysis.lint import lint_program
from repro.programs import registry

#: (program, diagnostic code) -> expected count.
BASELINE = {
    ("switch", "dead-action"): 3,
    ("switch", "unreachable-branch"): 2,
}


def main() -> int:
    failures = []
    for name in sorted(registry.CORPUS):
        report = lint_program(registry.load(name))
        counts: dict[str, int] = {}
        for diag in report.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
            print(f"{name}:{diag.render()}")
        for code, count in sorted(counts.items()):
            expected = BASELINE.get((name, code), 0)
            if count > expected:
                failures.append(
                    f"{name}: {count} x {code} (baseline allows {expected})"
                )
        for (base_name, code), expected in BASELINE.items():
            if base_name == name and counts.get(code, 0) < expected:
                failures.append(
                    f"{name}: {code} fired {counts.get(code, 0)} times, "
                    f"baseline records {expected} — update the baseline"
                )
        print(f"{name}: {report.summary()}")
    if failures:
        print("\nlint gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nlint gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
